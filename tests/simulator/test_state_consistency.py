"""Property suite: the SimState arrays and the object views never diverge.

The struct-of-arrays refactor left the FIFO ground truth in the
``Switch`` views while the numeric/derived state (credits, loads,
occupancies, head-of-line destinations, packet positions, wire counts)
lives in the :class:`~repro.simulator.state.SimState` store.  Every
mutation path is supposed to keep the two in lockstep through the view
methods — including the awkward ones that only run on topology changes:
the fault purge (buffered packets destroyed, output FIFOs unqueued),
the credit reconcile on repair, and the packet refresh that re-homes
header state.

These tests drive full fail-and-repair cycles on the two families with
the most distinct purge behaviour (torus: coordinate routes; fat-tree:
up/down escape routing) and call :meth:`SimState.verify` — the
O(everything) audit of every derived array against the queues — at the
slots bracketing each topology event, under both the reference slot
backend and the vectorized array backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.routing.catalog import make_mechanism
from repro.simulator.backends import make_simulator
from repro.simulator.config import PAPER_CONFIG
from repro.simulator.schedule import FaultSchedule
from repro.topology.base import Network
from repro.topology.catalog import make_topology
from repro.topology.faults import random_connected_fault_sequence
from repro.traffic import make_traffic

DOWN, UP, END = 25, 65, 90


def _topology(family: str):
    if family == "torus":
        return make_topology("torus", side=4, servers_per_switch=2)
    return make_topology("fattree", k=4, servers_per_switch=2)


def _fail_and_repair_sim(family, backend, mechanism, offered, n_faults, seed):
    topo = _topology(family)
    links = random_connected_fault_sequence(topo, n_faults, rng=seed)
    net = Network(topo)
    mech = make_mechanism(mechanism, net, rng=seed + 1)
    return make_simulator(
        PAPER_CONFIG.with_(backend=backend), net, mech,
        make_traffic("uniform", net, seed), offered=offered, seed=seed,
        fault_schedule=FaultSchedule.down_then_up(DOWN, UP, links),
    )


CASES = st.fixed_dictionaries(
    {
        "family": st.sampled_from(["torus", "fattree"]),
        "backend": st.sampled_from(["slot", "array"]),
        "mechanism": st.sampled_from(["Minimal", "PolSP"]),
        "offered": st.sampled_from([0.3, 0.6]),
        "n_faults": st.integers(1, 3),
        "seed": st.integers(0, 60),
    }
)


class TestFailRepairConsistency:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=CASES)
    def test_arrays_match_queues_across_cycle(self, case):
        sim = _fail_and_repair_sim(
            case["family"], case["backend"], case["mechanism"],
            case["offered"], case["n_faults"], case["seed"],
        )
        # Audit at the slots bracketing the failure (purge + stranded
        # credits), the repair (credit reconcile + packet refresh) and
        # the steady stretches before/between/after.
        audit_after = {10, DOWN, DOWN + 1, UP, UP + 1, END - 1}
        for slot in range(END):
            sim.step()
            if slot in audit_after:
                sim.state.verify(sim)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=CASES)
    def test_slot_and_array_end_state_identical(self, case):
        if case["backend"] != "array":  # the case draw only varies the rest
            case = dict(case, backend="array")
        sims = {
            b: _fail_and_repair_sim(
                case["family"], b, case["mechanism"],
                case["offered"], case["n_faults"], case["seed"],
            )
            for b in ("slot", "array")
        }
        for _ in range(END):
            for sim in sims.values():
                sim.step()
        slot_sim, array_sim = sims["slot"], sims["array"]
        assert slot_sim.in_flight == array_sim.in_flight
        assert slot_sim.next_pid == array_sim.next_pid
        assert np.array_equal(slot_sim.state.credits, array_sim.state.credits)
        assert np.array_equal(slot_sim.state.load, array_sim.state.load)
        assert np.array_equal(slot_sim.state.in_occ, array_sim.state.in_occ)
        assert np.array_equal(slot_sim.state.hol_dst, array_sim.state.hol_dst)
        assert (
            slot_sim.rng.integers(1 << 30) == array_sim.rng.integers(1 << 30)
        )


class TestViewAliasing:
    """The Switch attributes are *views* into the store, not copies."""

    @pytest.mark.parametrize("family", ["torus", "fattree"])
    def test_switch_rows_share_store_memory(self, family):
        net = Network(_topology(family))
        mech = make_mechanism("Minimal", net, rng=1)
        sim = make_simulator(
            PAPER_CONFIG, net, mech, make_traffic("uniform", net, 0),
            offered=0.2, seed=0,
        )
        for sw in sim.switches[:4]:
            assert np.shares_memory(sw.credits, sim.state.credits)
            assert np.shares_memory(sw.load, sim.state.load)
            assert np.shares_memory(sw.port_load, sim.state.port_load)
            assert np.shares_memory(sw.rr, sim.state.rr)

    def test_view_mutation_lands_in_store(self):
        net = Network(_topology("torus"))
        mech = make_mechanism("Minimal", net, rng=1)
        sim = make_simulator(
            PAPER_CONFIG, net, mech, make_traffic("uniform", net, 0),
            offered=0.2, seed=0,
        )
        sw = sim.switches[0]
        before = int(sim.state.credits[0, 0])
        sw.credits[0] -= 1
        assert sim.state.credits[0, 0] == before - 1
        sw.credits[0] += 1
