"""Compiled routing-table tests: equivalence with the dynamic mechanisms.

Validates the paper's §3 claim that Minimal, Polarized and the escape
subnetwork admit a table-based implementation rebuilt by BFS per topology
event.
"""

import numpy as np
import pytest

from _helpers import make_packet, walk_route
from repro.routing.minimal import MinimalRouting
from repro.routing.polarized import PolarizedRoutes
from repro.routing.tables import (
    TableMinimalRouting,
    compile_escape_table,
    compile_minimal_table,
    compile_polarized_table,
    minimal_ports,
    polarized_candidates_from_table,
    table_sizes,
)
from repro.updown.escape import PHASE_CLIMB, PHASE_DESCEND, EscapeSubnetwork


class TestMinimalTable:
    def test_ports_match_dynamic_mechanism(self, net2d):
        table = compile_minimal_table(net2d)
        mech = MinimalRouting(net2d, 4)
        for c in range(net2d.n_switches):
            for t in range(net2d.n_switches):
                if c == t:
                    assert minimal_ports(table, c, t) == []
                    continue
                pkt = make_packet(net2d, c, t)
                mech.init_packet(pkt)
                dynamic = sorted({p for p, _v, _pen in mech.candidates(pkt, c)})
                assert minimal_ports(table, c, t) == dynamic

    def test_ports_match_on_faulty_network(self, heavy_faulty2d):
        table = compile_minimal_table(heavy_faulty2d)
        mech = MinimalRouting(heavy_faulty2d, 16)
        for c in range(0, 16, 3):
            for t in range(1, 16, 4):
                if c == t:
                    continue
                pkt = make_packet(heavy_faulty2d, c, t)
                mech.init_packet(pkt)
                dynamic = sorted({p for p, _v, _pen in mech.candidates(pkt, c)})
                assert minimal_ports(table, c, t) == dynamic

    def test_table_mechanism_delivers_minimally(self, net2d, rng):
        mech = TableMinimalRouting(net2d, 8)
        d = net2d.distances
        for src in range(0, 16, 5):
            for dst in range(2, 16, 5):
                if src == dst:
                    continue
                visited = walk_route(mech, net2d, src, dst, rng)
                assert len(visited) - 1 == d[src, dst]

    def test_rejects_wide_radix(self):
        from repro.topology.base import Network
        from repro.topology.hyperx import HyperX

        net = Network(HyperX((34, 34), 1))  # degree 66 > 64
        with pytest.raises(ValueError):
            compile_minimal_table(net)


class TestPolarizedTable:
    def test_signs_match_distances(self, net2d):
        table = compile_polarized_table(net2d)
        d = net2d.distances
        for c in range(net2d.n_switches):
            for port, nbr in net2d.live_ports[c]:
                expected = np.sign(
                    d[nbr].astype(int) - d[c].astype(int)
                )
                assert np.array_equal(table[c, :, port], expected)

    @pytest.mark.parametrize("closer", [True, False])
    def test_candidates_match_dynamic_routes(self, net2d, closer):
        table = compile_polarized_table(net2d)
        routes = PolarizedRoutes(net2d)
        for src, dst in [(0, 15), (3, 12), (5, 10)]:
            pkt = make_packet(net2d, src, dst)
            routes.init_packet(pkt)
            pkt.closer = closer
            for c in range(net2d.n_switches):
                if c == dst:
                    continue
                dynamic = sorted(
                    (p, pen) for p, _n, pen in routes.ports(pkt, c)
                )
                from_table = sorted(
                    polarized_candidates_from_table(table, c, src, dst, closer)
                )
                assert from_table == dynamic

    def test_dead_ports_marked(self, heavy_faulty2d):
        table = compile_polarized_table(heavy_faulty2d)
        for c in range(heavy_faulty2d.n_switches):
            live = {p for p, _ in heavy_faulty2d.live_ports[c]}
            for port in range(table.shape[2]):
                if port not in live:
                    assert (table[c, :, port] == 2).all()


class TestEscapeTable:
    def test_matches_dynamic_candidates(self, faulty2d):
        esc = EscapeSubnetwork(faulty2d, root=3)
        table = compile_escape_table(esc)
        for c in range(faulty2d.n_switches):
            for t in range(faulty2d.n_switches):
                if c == t:
                    continue
                dyn = sorted((p, pen) for p, _n, pen in
                             esc.candidates(c, t, PHASE_CLIMB))
                assert sorted(table.candidates(c, t, PHASE_CLIMB)) == dyn
                try:
                    dyn_d = sorted((p, pen) for p, _n, pen in
                                   esc.candidates(c, t, PHASE_DESCEND))
                except AssertionError:
                    dyn_d = []
                assert sorted(table.candidates(c, t, PHASE_DESCEND)) == dyn_d

    def test_nbytes_positive(self, net2d):
        esc = EscapeSubnetwork(net2d, 0)
        assert compile_escape_table(esc).nbytes > 0


class TestTableSizes:
    def test_reports_all_kinds(self, net2d):
        esc = EscapeSubnetwork(net2d, 0)
        sizes = table_sizes(net2d, esc)
        assert sizes["switches"] == 16
        for key in ("minimal_bytes_per_switch", "polarized_bytes_per_switch",
                    "escape_bytes_per_switch"):
            assert sizes[key] > 0

    def test_paper_scale_fits_in_sram(self):
        """At 8x8x8 the per-switch tables stay in the tens of KB —
        implementable, as §3 claims."""
        from repro.topology.base import Network
        from repro.topology.hyperx import HyperX

        net = Network(HyperX((8, 8, 8), 8))
        sizes = table_sizes(net)
        assert sizes["minimal_bytes_per_switch"] < 64 * 1024
        assert sizes["polarized_bytes_per_switch"] < 64 * 1024
