"""Mechanism catalogue tests (paper Table 4 configurations)."""

import pytest

from repro.routing.catalog import (
    MECHANISMS,
    default_n_vcs,
    is_fault_tolerant,
    make_mechanism,
)
from repro.updown.escape import EscapeSubnetwork


class TestFactory:
    @pytest.mark.parametrize("name", MECHANISMS)
    def test_builds_every_mechanism(self, net2d, name):
        mech = make_mechanism(name, net2d)
        assert mech.name.lower() == name.lower()

    def test_case_insensitive(self, net2d):
        assert make_mechanism("polsp", net2d).name == "PolSP"
        assert make_mechanism("OMNIWAR", net2d).name == "OmniWAR"

    def test_unknown_name_rejected(self, net2d):
        with pytest.raises(ValueError):
            make_mechanism("DOR", net2d)

    def test_default_vc_budget_is_2n(self, net2d, net3d):
        assert default_n_vcs(net2d) == 4
        assert default_n_vcs(net3d) == 6
        assert make_mechanism("Polarized", net2d).n_vcs == 4
        assert make_mechanism("Valiant", net3d).n_vcs == 6

    def test_explicit_vcs_override(self, net2d):
        assert make_mechanism("PolSP", net2d, n_vcs=2).n_vcs == 2

    def test_shared_escape_reused(self, net2d):
        esc = EscapeSubnetwork(net2d, 0)
        m1 = make_mechanism("OmniSP", net2d, escape=esc)
        m2 = make_mechanism("PolSP", net2d, escape=esc)
        assert m1.escape is esc and m2.escape is esc

    def test_root_forwarded(self, net2d):
        mech = make_mechanism("PolSP", net2d, root=7)
        assert mech.escape.root == 7

    def test_max_deroutes_forwarded(self, net3d):
        mech = make_mechanism("OmniWAR", net3d, max_deroutes=1)
        assert mech.routes.max_deroutes == 1


class TestClassification:
    def test_fault_tolerance_classification(self):
        assert is_fault_tolerant("OmniSP")
        assert is_fault_tolerant("polsp")
        for name in ("Minimal", "Valiant", "OmniWAR", "Polarized"):
            assert not is_fault_tolerant(name)

    def test_mechanism_list_matches_paper_order(self):
        assert MECHANISMS == (
            "Minimal", "Valiant", "OmniWAR", "Polarized", "OmniSP", "PolSP",
        )
