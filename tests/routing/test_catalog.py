"""Mechanism catalogue tests (paper Table 4 configurations)."""

import pytest

from repro.routing.catalog import (
    MECHANISMS,
    default_n_vcs,
    is_fault_tolerant,
    make_mechanism,
)
from repro.updown.escape import EscapeSubnetwork


class TestFactory:
    @pytest.mark.parametrize("name", MECHANISMS)
    def test_builds_every_mechanism(self, net2d, name):
        mech = make_mechanism(name, net2d)
        assert mech.name.lower() == name.lower()

    def test_case_insensitive(self, net2d):
        assert make_mechanism("polsp", net2d).name == "PolSP"
        assert make_mechanism("OMNIWAR", net2d).name == "OmniWAR"

    def test_unknown_name_rejected(self, net2d):
        with pytest.raises(ValueError):
            make_mechanism("DOR", net2d)

    def test_default_vc_budget_is_2n(self, net2d, net3d):
        assert default_n_vcs(net2d) == 4
        assert default_n_vcs(net3d) == 6
        assert make_mechanism("Polarized", net2d).n_vcs == 4
        assert make_mechanism("Valiant", net3d).n_vcs == 6

    def test_explicit_vcs_override(self, net2d):
        assert make_mechanism("PolSP", net2d, n_vcs=2).n_vcs == 2

    def test_shared_escape_reused(self, net2d):
        esc = EscapeSubnetwork(net2d, 0)
        m1 = make_mechanism("OmniSP", net2d, escape=esc)
        m2 = make_mechanism("PolSP", net2d, escape=esc)
        assert m1.escape is esc and m2.escape is esc

    def test_root_forwarded(self, net2d):
        mech = make_mechanism("PolSP", net2d, root=7)
        assert mech.escape.root == 7

    def test_max_deroutes_forwarded(self, net3d):
        mech = make_mechanism("OmniWAR", net3d, max_deroutes=1)
        assert mech.routes.max_deroutes == 1


class TestTopologyCompatibility:
    """The per-mechanism x per-topology compatibility layer."""

    def _families(self):
        from repro.topology.fattree import FatTree
        from repro.topology.hyperx import HyperX
        from repro.topology.random_regular import RandomRegular
        from repro.topology.torus import Torus

        return {
            "hyperx": HyperX((4, 4), 2),
            "torus": Torus((4, 4), 2),
            "fattree": FatTree(4),
            "random": RandomRegular(16, 4, 2, seed=0),
        }

    def test_matrix_shape_and_values(self):
        from repro.routing.catalog import compatibility_matrix

        rows = compatibility_matrix(self._families())
        assert [r["mechanism"] for r in rows] == list(MECHANISMS)
        for r in rows:
            if r["mechanism"] in ("OmniWAR", "OmniSP"):
                assert r["hyperx"] and not r["torus"]
                assert not r["fattree"] and not r["random"]
            else:
                assert all(r[label] for label in self._families())

    def test_supported_mechanisms_per_family(self):
        from repro.routing.catalog import supported_mechanisms

        fams = self._families()
        assert supported_mechanisms(fams["hyperx"], MECHANISMS) == list(MECHANISMS)
        for label in ("torus", "fattree", "random"):
            got = supported_mechanisms(fams[label], MECHANISMS)
            assert got == [m for m in MECHANISMS if m not in ("OmniWAR", "OmniSP")]

    def test_upfront_rejection_names_both_sides(self):
        from repro.topology.base import Network

        for label, topo in self._families().items():
            if label == "hyperx":
                continue
            net = Network(topo)
            with pytest.raises(TypeError, match=f"OmniWAR.*{type(topo).__name__}"):
                make_mechanism("OmniWAR", net)

    def test_unknown_mechanism_rejected_at_filter_time(self):
        """A typo fails where the sweep generates jobs, not in a worker."""
        from repro.routing.catalog import mechanism_supported, supported_mechanisms

        topo = self._families()["torus"]
        with pytest.raises(ValueError, match="unknown mechanism 'Polarised'"):
            mechanism_supported("Polarised", topo)
        with pytest.raises(ValueError, match="unknown mechanism"):
            supported_mechanisms(topo, ["PolSP", "Polarised"])

    def test_every_supported_mechanism_builds_on_every_family(self):
        from repro.routing.catalog import supported_mechanisms
        from repro.topology.base import Network

        for topo in self._families().values():
            net = Network(topo)
            for name in supported_mechanisms(topo, MECHANISMS):
                assert make_mechanism(name, net, n_vcs=4).name == name


class TestClassification:
    def test_fault_tolerance_classification(self):
        assert is_fault_tolerant("OmniSP")
        assert is_fault_tolerant("polsp")
        for name in ("Minimal", "Valiant", "OmniWAR", "Polarized"):
            assert not is_fault_tolerant(name)

    def test_mechanism_list_matches_paper_order(self):
        assert MECHANISMS == (
            "Minimal", "Valiant", "OmniWAR", "Polarized", "OmniSP", "PolSP",
        )
