"""Escape-only (ablation) mechanism tests."""

import pytest

from _helpers import make_packet, walk_route
from repro.routing.escape_only import EscapeOnlyRouting
from repro.updown.escape import EscapeSubnetwork


class TestConstruction:
    def test_names_reflect_shortcut_setting(self, net2d):
        assert EscapeOnlyRouting(net2d).name == "EscapeOnly"
        assert EscapeOnlyRouting(net2d, shortcuts=False).name == "UpDownOnly"

    def test_mismatched_escape_rejected(self, net2d):
        esc = EscapeSubnetwork(net2d, 0, shortcuts=True)
        with pytest.raises(ValueError):
            EscapeOnlyRouting(net2d, shortcuts=False, escape=esc)


class TestRoutes:
    @pytest.mark.parametrize("shortcuts", [True, False])
    def test_all_pairs_deliver(self, net2d, rng, shortcuts):
        mech = EscapeOnlyRouting(net2d, n_vcs=1, shortcuts=shortcuts)
        for src in range(0, 16, 3):
            for dst in range(1, 16, 4):
                if src == dst:
                    continue
                visited = walk_route(mech, net2d, src, dst, rng)
                assert visited[-1] == dst

    def test_shortcuts_shorten_routes(self, net2d):
        """With shortcuts the escape contains 1-dim minimal routes; the
        pure Up*/Down* tree must detour through the root's vicinity."""
        with_sc = EscapeSubnetwork(net2d, 0, shortcuts=True)
        without = EscapeSubnetwork(net2d, 0, shortcuts=False)
        assert (with_sc.dist_a <= without.dist_a).all()
        assert (with_sc.dist_a < without.dist_a).any()

    def test_hops_counted_as_escape_hops(self, net2d, rng):
        mech = EscapeOnlyRouting(net2d)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        cands = mech.candidates(pkt, 0)
        port, vc, _ = cands[0]
        nbr = net2d.port_neighbour[0][port]
        mech.on_hop(pkt, 0, nbr, port, vc)
        assert pkt.hops == pkt.escape_hops == 1

    def test_faulty_network_still_delivers(self, heavy_faulty2d, rng):
        mech = EscapeOnlyRouting(heavy_faulty2d, root=5)
        for src in range(0, 16, 5):
            for dst in range(2, 16, 5):
                if src == dst:
                    continue
                visited = walk_route(mech, heavy_faulty2d, src, dst, rng,
                                     max_hops=64)
                assert visited[-1] == dst
