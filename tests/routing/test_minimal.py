"""Minimal adaptive routing tests."""


from _helpers import make_packet, walk_route
from repro.routing.minimal import MinimalRouting


class TestCandidates:
    def test_only_shortest_path_hops(self, net2d):
        mech = MinimalRouting(net2d, 4)
        d = net2d.distances
        for src in (0, 5):
            for dst in (10, 15):
                if src == dst:
                    continue
                pkt = make_packet(net2d, src, dst)
                mech.init_packet(pkt)
                for port, _vc, pen in mech.candidates(pkt, src):
                    nbr = net2d.port_neighbour[src][port]
                    assert d[nbr, dst] == d[src, dst] - 1
                    assert pen == 0

    def test_all_minimal_ports_offered(self, net2d):
        """2D HyperX at distance 2: both dimension orders are candidates."""
        hx = net2d.topology
        src = hx.switch_id((0, 0))
        dst = hx.switch_id((2, 3))
        pkt = make_packet(net2d, src, dst)
        mech = MinimalRouting(net2d, 4)
        mech.init_packet(pkt)
        ports = {p for p, _v, _pen in mech.candidates(pkt, src)}
        assert hx.port(src, 0, 2) in ports
        assert hx.port(src, 1, 3) in ports

    def test_two_by_two_ladder_vcs(self, net2d):
        mech = MinimalRouting(net2d, 4)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        vcs0 = {vc for _p, vc, _ in mech.candidates(pkt, 0)}
        assert vcs0 == {0, 1}
        pkt.hops = 1
        vcs1 = {vc for _p, vc, _ in mech.candidates(pkt, 0)}
        assert vcs1 == {2, 3}

    def test_ladder_exhaustion_returns_empty(self, net2d):
        mech = MinimalRouting(net2d, 4)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        pkt.hops = 2  # 2 VCs per step, 4 VCs -> at most 2 hops
        assert mech.candidates(pkt, 0) == []

    def test_avoids_dead_links(self, faulty2d):
        mech = MinimalRouting(faulty2d, 16)
        d = faulty2d.distances
        for src in range(faulty2d.n_switches):
            for dst in range(faulty2d.n_switches):
                if src == dst:
                    continue
                pkt = make_packet(faulty2d, src, dst)
                mech.init_packet(pkt)
                for port, _vc, _pen in mech.candidates(pkt, src):
                    nbr = faulty2d.port_neighbour[src][port]
                    assert nbr >= 0
                    assert d[nbr, dst] == d[src, dst] - 1


class TestRoutes:
    def test_routes_have_minimal_length(self, net2d, rng):
        mech = MinimalRouting(net2d, 8)
        d = net2d.distances
        for src in range(0, 16, 3):
            for dst in range(1, 16, 4):
                if src == dst:
                    continue
                visited = walk_route(mech, net2d, src, dst, rng)
                assert len(visited) - 1 == d[src, dst]

    def test_routes_adapt_to_faults(self, faulty2d, rng):
        mech = MinimalRouting(faulty2d, 16)
        d = faulty2d.distances
        for src in range(0, 16, 5):
            for dst in range(2, 16, 5):
                if src == dst:
                    continue
                visited = walk_route(mech, faulty2d, src, dst, rng)
                assert len(visited) - 1 == d[src, dst]

    def test_max_route_length(self, net2d):
        assert MinimalRouting(net2d, 4).max_route_length() == 2
