"""Tests for the routing-mechanism interface helpers."""

import pytest

from repro.routing.base import ladder_vc


class TestLadderVC:
    def test_one_by_one(self):
        assert ladder_vc(0, 4) == [0]
        assert ladder_vc(3, 4) == [3]

    def test_exhaustion(self):
        assert ladder_vc(4, 4) == []
        assert ladder_vc(10, 4) == []

    def test_two_by_two(self):
        assert ladder_vc(0, 4, 2) == [0, 1]
        assert ladder_vc(1, 4, 2) == [2, 3]
        assert ladder_vc(2, 4, 2) == []

    def test_partial_step_at_budget_edge(self):
        # 5 VCs, two per step: third step only has VC 4 left.
        assert ladder_vc(2, 5, 2) == [4]

    def test_monotone_vc_indices(self):
        """Ladder VCs strictly increase with hop count — the deadlock-freedom
        argument of the ladder scheme."""
        prev_max = -1
        for h in range(3):
            vcs = ladder_vc(h, 6, 2)
            assert min(vcs) > prev_max
            prev_max = max(vcs)


class TestMechanismValidation:
    def test_rejects_zero_vcs(self, net2d):
        from repro.routing.minimal import MinimalRouting

        with pytest.raises(ValueError):
            MinimalRouting(net2d, 0)
