"""SurePath mechanism tests: CRout/CEsc rules and fault tolerance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _helpers import make_packet, walk_route
from repro.routing.surepath import (
    OmniSPRouting,
    PolSPRouting,
    omni_surepath,
    polarized_surepath,
)
from repro.topology.base import Network
from repro.updown.escape import EscapeSubnetwork


class TestConstruction:
    def test_requires_two_vcs(self, net2d):
        with pytest.raises(ValueError):
            PolSPRouting(net2d, n_vcs=1)

    def test_vc_partition(self, net2d):
        mech = PolSPRouting(net2d, n_vcs=4)
        assert mech.routing_vcs == (0, 1, 2)
        assert mech.escape_vc == 3

    def test_shared_escape_accepted(self, net2d):
        esc = EscapeSubnetwork(net2d, 0)
        a = OmniSPRouting(net2d, escape=esc)
        b = PolSPRouting(net2d, escape=esc)
        assert a.escape is b.escape

    def test_foreign_escape_rejected(self, net2d, hx2d):
        other = Network(hx2d)
        esc = EscapeSubnetwork(other, 0)
        with pytest.raises(ValueError):
            PolSPRouting(net2d, escape=esc)

    def test_factories(self, net2d):
        assert omni_surepath(net2d).name == "OmniSP"
        assert polarized_surepath(net2d).name == "PolSP"


class TestCandidateRules:
    def test_routing_hops_on_all_routing_vcs(self, net2d):
        mech = PolSPRouting(net2d, n_vcs=4)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        cands = mech.candidates(pkt, 0)
        routing = [c for c in cands if c[1] != mech.escape_vc]
        ports = {p for p, _v, _pen in routing}
        for p in ports:
            vcs = {v for pp, v, _pen in routing if pp == p}
            assert vcs == set(mech.routing_vcs)

    def test_escape_candidates_always_offered(self, net2d):
        mech = PolSPRouting(net2d, n_vcs=4)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        cands = mech.candidates(pkt, 0)
        assert any(vc == mech.escape_vc for _p, vc, _pen in cands)

    def test_escape_is_one_way(self, net2d):
        """Once in CEsc, only escape candidates are offered."""
        mech = PolSPRouting(net2d, n_vcs=4)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        pkt.in_escape = True
        cands = mech.candidates(pkt, 5)
        assert cands
        assert all(vc == mech.escape_vc for _p, vc, _pen in cands)

    def test_on_hop_tracks_escape_state(self, net2d):
        mech = PolSPRouting(net2d, n_vcs=4)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        cands = [c for c in mech.candidates(pkt, 0) if c[1] == mech.escape_vc]
        port, vc, _pen = cands[0]
        nbr = net2d.port_neighbour[0][port]
        mech.on_hop(pkt, 0, nbr, port, vc)
        assert pkt.in_escape
        assert pkt.escape_hops == 1
        assert pkt.hops == 1

    def test_routing_hop_keeps_crout(self, net2d):
        mech = PolSPRouting(net2d, n_vcs=4)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        cands = [c for c in mech.candidates(pkt, 0) if c[1] != mech.escape_vc]
        port, vc, _pen = cands[0]
        nbr = net2d.port_neighbour[0][port]
        mech.on_hop(pkt, 0, nbr, port, vc)
        assert not pkt.in_escape
        assert pkt.escape_hops == 0


class TestForcedHops:
    def test_forced_hop_when_routes_exhausted(self, hx2d):
        """Omni with spent deroute budget and a dead minimal link can only
        offer escape candidates — the paper's forced hop."""
        src, dst = hx2d.switch_id((0, 0)), hx2d.switch_id((2, 0))
        net = Network(hx2d, [tuple(sorted((src, dst)))])
        mech = OmniSPRouting(net, n_vcs=4, max_deroutes=0)
        pkt = make_packet(net, src, dst)
        mech.init_packet(pkt)
        cands = mech.candidates(pkt, src)
        assert cands
        assert all(vc == mech.escape_vc for _p, vc, _pen in cands)


class TestDelivery:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_walks_always_deliver_healthy(self, net2d, data):
        mech = PolSPRouting(net2d, n_vcs=4)
        n = net2d.n_switches
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        if src == dst:
            return
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        visited = walk_route(mech, net2d, src, dst, rng, max_hops=64)
        assert visited[-1] == dst

    @pytest.mark.parametrize("cls", [OmniSPRouting, PolSPRouting])
    def test_walks_always_deliver_heavy_faults(self, heavy_faulty2d, cls, rng):
        mech = cls(heavy_faulty2d, n_vcs=2)  # the paper's minimum budget
        for src in range(0, 16, 3):
            for dst in range(1, 16, 4):
                if src == dst:
                    continue
                visited = walk_route(
                    mech, heavy_faulty2d, src, dst, rng, max_hops=128
                )
                assert visited[-1] == dst

    def test_max_route_length_finite(self, heavy_faulty2d):
        mech = PolSPRouting(heavy_faulty2d, n_vcs=4)
        bound = mech.max_route_length()
        assert bound is not None
        assert bound >= heavy_faulty2d.diameter
