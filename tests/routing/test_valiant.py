"""Valiant randomized routing tests."""


from _helpers import make_packet, walk_route
from repro.routing.valiant import ValiantRouting


class TestPhases:
    def test_packet_gets_intermediate(self, net2d):
        mech = ValiantRouting(net2d, 4, rng=0)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        assert 0 <= pkt.mid < net2d.n_switches
        assert pkt.phase == 0

    def test_first_phase_heads_to_intermediate(self, net2d):
        mech = ValiantRouting(net2d, 8, rng=1)
        d = net2d.distances
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        pkt.mid = 5  # force a known intermediate
        for port, _vc, _pen in mech.candidates(pkt, 0):
            nbr = net2d.port_neighbour[0][port]
            assert d[nbr, 5] == d[0, 5] - 1

    def test_phase_flips_at_intermediate(self, net2d):
        mech = ValiantRouting(net2d, 8, rng=1)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        pkt.mid = 5
        mech.on_hop(pkt, 0, 5, 0, 0)
        assert pkt.phase == 1

    def test_degenerate_intermediate_at_source(self, net2d):
        """mid == src: phase 1 starts immediately, pure minimal route."""
        mech = ValiantRouting(net2d, 8, rng=1)
        d = net2d.distances
        pkt = make_packet(net2d, 3, 12)
        mech.init_packet(pkt)
        pkt.mid = 3
        for port, _vc, _pen in mech.candidates(pkt, 3):
            nbr = net2d.port_neighbour[3][port]
            assert d[nbr, 12] == d[3, 12] - 1
        assert pkt.phase == 1


class TestRoutes:
    def test_routes_deliver_and_respect_bound(self, net2d, rng):
        mech = ValiantRouting(net2d, 8, rng=3)
        for src in range(0, 16, 3):
            for dst in range(1, 16, 3):
                if src == dst:
                    continue
                visited = walk_route(mech, net2d, src, dst, rng)
                # Two minimal phases: at most 2 * diameter hops.
                assert len(visited) - 1 <= 2 * net2d.diameter

    def test_ladder_vc_progression(self, net2d, rng):
        mech = ValiantRouting(net2d, 8, rng=3)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        cands = mech.candidates(pkt, 0)
        assert {vc for _p, vc, _pen in cands} == {0}
        pkt.hops = 2
        cands = mech.candidates(pkt, 0)
        assert {vc for _p, vc, _pen in cands} == {2}

    def test_ladder_exhaustion(self, net2d):
        mech = ValiantRouting(net2d, 4, rng=3)
        pkt = make_packet(net2d, 0, 15)
        mech.init_packet(pkt)
        pkt.hops = 4
        assert mech.candidates(pkt, 0) == []

    def test_intermediates_cover_network(self, net2d):
        """Valiant's balancing needs intermediates spread over all switches."""
        mech = ValiantRouting(net2d, 8, rng=5)
        mids = set()
        for i in range(400):
            pkt = make_packet(net2d, 0, 15, pid=i)
            mech.init_packet(pkt)
            mids.add(pkt.mid)
        assert len(mids) == net2d.n_switches

    def test_routes_adapt_to_faults(self, faulty2d, rng):
        mech = ValiantRouting(faulty2d, 16, rng=3)
        for src in range(0, 16, 5):
            for dst in range(2, 16, 5):
                if src == dst:
                    continue
                visited = walk_route(mech, faulty2d, src, dst, rng)
                assert visited[-1] == dst
