"""Omnidimensional route-set and OmniWAR mechanism tests."""

import pytest

from _helpers import make_packet, walk_route
from repro.routing.base import DEROUTE_PENALTY, NO_PENALTY
from repro.routing.omni import OmnidimensionalRoutes, OmniWARRouting
from repro.topology.base import Network
from repro.topology.hyperx import HyperX


class TestRouteSet:
    def test_requires_hyperx(self):
        class FakeTopo(HyperX):
            pass

        # A non-HyperX topology is rejected.
        from repro.topology.base import Topology

        class Ring(Topology):
            n_switches = 4
            servers_per_switch = 1

            def neighbours(self, s):
                return [(s - 1) % 4, (s + 1) % 4]

        with pytest.raises(TypeError):
            OmnidimensionalRoutes(Network(Ring()))

    def test_only_unaligned_dimensions_used(self, net2d):
        """Source and target in the same row: no hop leaves the row."""
        hx = net2d.topology
        src, dst = hx.switch_id((0, 1)), hx.switch_id((3, 1))
        routes = OmnidimensionalRoutes(net2d)
        pkt = make_packet(net2d, src, dst)
        routes.init_packet(pkt)
        for _port, nbr, _pen in routes.ports(pkt, src):
            assert hx.coords(nbr)[1] == 1  # stays in the row

    def test_minimal_hop_unpenalized_deroutes_penalized(self, net2d):
        hx = net2d.topology
        src, dst = hx.switch_id((0, 0)), hx.switch_id((2, 0))
        routes = OmnidimensionalRoutes(net2d)
        pkt = make_packet(net2d, src, dst)
        routes.init_packet(pkt)
        pens = {}
        for _port, nbr, pen in routes.ports(pkt, src):
            pens[hx.coords(nbr)] = pen
        assert pens[(2, 0)] == NO_PENALTY
        assert pens[(1, 0)] == DEROUTE_PENALTY
        assert pens[(3, 0)] == DEROUTE_PENALTY

    def test_deroute_budget_enforced(self, net2d):
        hx = net2d.topology
        src, dst = hx.switch_id((0, 0)), hx.switch_id((2, 0))
        routes = OmnidimensionalRoutes(net2d, max_deroutes=0)
        pkt = make_packet(net2d, src, dst)
        routes.init_packet(pkt)
        hops = routes.ports(pkt, src)
        assert len(hops) == 1  # only the minimal hop
        assert hops[0][2] == NO_PENALTY

    def test_deroute_consumes_budget(self, net2d):
        hx = net2d.topology
        src, dst = hx.switch_id((0, 0)), hx.switch_id((2, 0))
        routes = OmnidimensionalRoutes(net2d, max_deroutes=1)
        pkt = make_packet(net2d, src, dst)
        routes.init_packet(pkt)
        deroute_target = hx.switch_id((1, 0))
        routes.on_hop(pkt, deroute_target)
        assert pkt.deroutes == 1
        hops = routes.ports(pkt, deroute_target)
        assert all(pen == NO_PENALTY for _p, _n, pen in hops)

    def test_max_route_length_is_n_plus_m(self, net3d):
        routes = OmnidimensionalRoutes(net3d)
        assert routes.max_route_length() == 6  # n=3, m=n=3

    def test_aligned_destination_yields_no_candidates(self, net2d):
        """At the destination, no dimension is unaligned: empty port set."""
        routes = OmnidimensionalRoutes(net2d)
        pkt = make_packet(net2d, 0, 5)
        routes.init_packet(pkt)
        assert routes.ports(pkt, 5) == []


class TestFaultIntolerance:
    """The paper's motivation: a single fault can strand Omni routes."""

    def test_dead_minimal_link_with_spent_budget_strands(self, hx2d):
        src, dst = hx2d.switch_id((0, 0)), hx2d.switch_id((2, 0))
        net = Network(hx2d, [tuple(sorted((src, dst)))])
        routes = OmnidimensionalRoutes(net, max_deroutes=0)
        pkt = make_packet(net, src, dst)
        routes.init_packet(pkt)
        assert routes.ports(pkt, src) == []  # nothing legal: stranded

    def test_deroutes_can_rescue_when_budget_remains(self, hx2d, rng):
        src, dst = hx2d.switch_id((0, 0)), hx2d.switch_id((2, 0))
        net = Network(hx2d, [tuple(sorted((src, dst)))])
        mech = OmniWARRouting(net, 8)
        visited = walk_route(mech, net, src, dst, rng)
        assert visited[-1] == dst


class TestOmniWAR:
    def test_ladder_vcs(self, net2d):
        mech = OmniWARRouting(net2d, 4)
        pkt = make_packet(net2d, 0, 10)
        mech.init_packet(pkt)
        assert {vc for _p, vc, _pen in mech.candidates(pkt, 0)} == {0}
        pkt.hops = 3
        assert {vc for _p, vc, _pen in mech.candidates(pkt, 0)} == {3}

    def test_ladder_exhaustion(self, net2d):
        mech = OmniWARRouting(net2d, 4)
        pkt = make_packet(net2d, 0, 10)
        mech.init_packet(pkt)
        pkt.hops = 4
        assert mech.candidates(pkt, 0) == []

    def test_routes_deliver_within_bound(self, net3d, rng):
        mech = OmniWARRouting(net3d, 6)
        for src in range(0, 64, 13):
            for dst in range(3, 64, 17):
                if src == dst:
                    continue
                visited = walk_route(mech, net3d, src, dst, rng)
                assert len(visited) - 1 <= 6
