"""Polarized routing tests: Table 1 semantics and the weight function."""

from hypothesis import given, settings
from hypothesis import strategies as st

from _helpers import make_packet, walk_route
from repro.routing.base import DEROUTE_PENALTY, NO_PENALTY, POLARIZED_FLAT_PENALTY
from repro.routing.polarized import PolarizedRoutes, PolarizedRouting


def mu(dist, s, t, c):
    return int(dist[c, s]) - int(dist[c, t])


class TestTableOne:
    """The five (Δs, Δt) combinations of the paper's Table 1."""

    def test_only_legal_delta_combinations(self, net3d):
        routes = PolarizedRoutes(net3d)
        d = net3d.distances
        legal = {(1, -1), (1, 0), (0, -1), (1, 1), (-1, -1)}
        for src, dst in [(0, 63), (5, 40), (17, 3)]:
            pkt = make_packet(net3d, src, dst)
            routes.init_packet(pkt)
            for c in range(0, 64, 7):
                if c in (dst,):
                    continue
                pkt.closer = bool(d[c, src] < d[c, dst])
                for _port, nbr, _pen in routes.ports(pkt, c):
                    ds = int(d[nbr, src]) - int(d[c, src])
                    dt = int(d[nbr, dst]) - int(d[c, dst])
                    assert (ds, dt) in legal

    def test_penalties_by_delta_mu(self, net3d):
        routes = PolarizedRoutes(net3d)
        d = net3d.distances
        src, dst = 0, 63
        pkt = make_packet(net3d, src, dst)
        routes.init_packet(pkt)
        for c in range(1, 64, 5):
            if c == dst:
                continue
            pkt.closer = bool(d[c, src] < d[c, dst])
            for _port, nbr, pen in routes.ports(pkt, c):
                dmu = (int(d[nbr, src]) - int(d[c, src])) - (
                    int(d[nbr, dst]) - int(d[c, dst])
                )
                expected = {2: NO_PENALTY, 1: DEROUTE_PENALTY, 0: POLARIZED_FLAT_PENALTY}
                assert pen == expected[dmu]

    def test_flat_hops_gated_by_closer_bit(self, net3d):
        """(+1,+1) only while closer to source; (-1,-1) only afterwards."""
        routes = PolarizedRoutes(net3d)
        d = net3d.distances
        src, dst = 0, 63
        pkt = make_packet(net3d, src, dst)
        routes.init_packet(pkt)
        for c in range(0, 64, 3):
            if c == dst:
                continue
            for closer in (True, False):
                pkt.closer = closer
                for _port, nbr, _pen in routes.ports(pkt, c):
                    ds = int(d[nbr, src]) - int(d[c, src])
                    dt = int(d[nbr, dst]) - int(d[c, dst])
                    if ds - dt == 0:
                        assert (ds == 1) == closer


class TestWeightMonotonicity:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_mu_never_decreases_on_walks(self, net3d, data):
        routes = PolarizedRoutes(net3d)
        d = net3d.distances
        n = net3d.n_switches
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        if src == dst:
            return
        pkt = make_packet(net3d, src, dst)
        routes.init_packet(pkt)
        c = src
        prev_mu = mu(d, src, dst, c)
        for _ in range(2 * net3d.diameter + 1):
            if c == dst:
                break
            cands = routes.ports(pkt, c)
            assert cands, "Polarized stranded a packet on a healthy network"
            _port, nbr, _pen = data.draw(st.sampled_from(cands))
            routes.on_hop(pkt, nbr)
            c = nbr
            new_mu = mu(d, src, dst, c)
            assert new_mu >= prev_mu
            prev_mu = new_mu
        assert c == dst

    def test_route_length_bound(self, net3d, rng):
        routes = PolarizedRouting(net3d, 6)
        for src in range(0, 64, 11):
            for dst in range(5, 64, 13):
                if src == dst:
                    continue
                visited = walk_route(routes, net3d, src, dst, rng)
                assert len(visited) - 1 <= 2 * net3d.diameter


class TestFaultAdaptivity:
    def test_routes_deliver_on_faulty_network(self, faulty2d, rng):
        """Polarized reads BFS tables, so routes adapt (mechanism may still
        die by ladder, tested in the simulator integration suite)."""
        routes = PolarizedRoutes(faulty2d)
        d = faulty2d.distances
        for src in range(0, 16, 3):
            for dst in range(1, 16, 4):
                if src == dst:
                    continue
                pkt = make_packet(faulty2d, src, dst)
                routes.init_packet(pkt)
                c = src
                for _ in range(2 * faulty2d.diameter):
                    if c == dst:
                        break
                    cands = routes.ports(pkt, c)
                    assert cands
                    # Greedy: best penalty first (deterministic here).
                    cands.sort(key=lambda x: x[2])
                    _p, nbr, _pen = cands[0]
                    routes.on_hop(pkt, nbr)
                    c = nbr
                assert c == dst

    def test_ladder_mechanism_exhausts_under_long_routes(self, heavy_faulty2d):
        mech = PolarizedRouting(heavy_faulty2d, 4)
        pkt = make_packet(heavy_faulty2d, 0, 15)
        mech.init_packet(pkt)
        pkt.hops = 4
        assert mech.candidates(pkt, 0) == []

    def test_max_route_length_tracks_diameter(self, heavy_faulty2d):
        routes = PolarizedRoutes(heavy_faulty2d)
        assert routes.max_route_length() == 2 * heavy_faulty2d.diameter
