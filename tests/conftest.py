"""Shared fixtures: small topologies, networks and deterministic RNGs."""

from __future__ import annotations

import pathlib
import sys

import numpy as np
import pytest

# Make tests/_helpers.py importable from every test subdirectory.
sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.topology.base import Network
from repro.topology.faults import random_connected_fault_sequence
from repro.topology.hyperx import HyperX


@pytest.fixture(scope="session")
def hx2d() -> HyperX:
    """4x4 2D HyperX with 4 servers per switch (tiny paper analogue)."""
    return HyperX((4, 4), 4)


@pytest.fixture(scope="session")
def hx3d() -> HyperX:
    """4x4x4 3D HyperX with 4 servers per switch."""
    return HyperX((4, 4, 4), 4)


@pytest.fixture(scope="session")
def hx_rect() -> HyperX:
    """Irregular-sided HyperX to catch side-ordering bugs."""
    return HyperX((3, 5), 2)


@pytest.fixture(scope="session")
def net2d(hx2d) -> Network:
    return Network(hx2d)


@pytest.fixture(scope="session")
def net3d(hx3d) -> Network:
    return Network(hx3d)


@pytest.fixture(scope="session")
def faulty2d(hx2d) -> Network:
    """4x4 2D HyperX with 12 random (connected) faults — diameter grows."""
    seq = random_connected_fault_sequence(hx2d, 12, rng=7)
    return Network(hx2d, seq)


@pytest.fixture(scope="session")
def heavy_faulty2d(hx2d) -> Network:
    """4x4 2D HyperX at 50% link failures, still connected."""
    seq = random_connected_fault_sequence(hx2d, 24, rng=7)
    return Network(hx2d, seq)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
