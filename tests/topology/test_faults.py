"""Fault-model tests: random sequences and the paper's structured shapes."""

import pytest

from repro.topology.base import Network
from repro.topology.faults import (
    apply_faults,
    block_switches,
    cross_faults,
    random_connected_fault_sequence,
    random_fault_sequence,
    row_faults,
    row_switches,
    shape_faults,
    shape_root,
    star_faults,
    subcube_faults,
    subplane_faults,
)
from repro.topology.hyperx import HyperX


class TestRandomSequences:
    def test_requested_length_and_uniqueness(self, hx2d):
        seq = random_fault_sequence(hx2d, 20, rng=1)
        assert len(seq) == 20
        assert len(set(seq)) == 20

    def test_links_belong_to_topology(self, hx2d):
        links = set(hx2d.links())
        for link in random_fault_sequence(hx2d, 30, rng=2):
            assert link in links

    def test_too_many_faults_rejected(self, hx2d):
        with pytest.raises(ValueError):
            random_fault_sequence(hx2d, len(hx2d.links()) + 1)

    def test_deterministic_with_seed(self, hx2d):
        assert random_fault_sequence(hx2d, 10, rng=5) == random_fault_sequence(
            hx2d, 10, rng=5
        )

    def test_connected_sequence_prefixes_stay_connected(self, hx2d):
        seq = random_connected_fault_sequence(hx2d, 20, rng=3)
        for k in range(0, 21, 5):
            assert Network(hx2d, seq[:k]).is_connected

    def test_connected_sequence_impossible_raises(self, hx2d):
        # 16 switches need >= 15 links; 48 - 40 = 8 < 15.
        with pytest.raises(RuntimeError):
            random_connected_fault_sequence(hx2d, 40, rng=3, max_tries=2000)


class TestRowShape:
    def test_paper_2d_row_count(self):
        hx = HyperX((16, 16), 16)
        assert len(row_faults(hx)) == 120  # K16 = C(16,2)

    def test_paper_3d_row_count(self):
        hx = HyperX((8, 8, 8), 8)
        assert len(row_faults(hx)) == 28  # K8

    def test_row_switches_share_fixed_coords(self, hx3d):
        sw = row_switches(hx3d, 1, (2, 3))
        for s in sw:
            c = hx3d.coords(s)
            assert c[0] == 2 and c[2] == 3
        assert len(sw) == 4

    def test_row_keeps_network_connected(self, hx2d):
        net = apply_faults(hx2d, row_faults(hx2d))
        assert net.is_connected

    def test_fixed_length_validated(self, hx3d):
        with pytest.raises(ValueError):
            row_switches(hx3d, 0, (1,))


class TestBlockShapes:
    def test_paper_subplane_count(self):
        hx = HyperX((16, 16), 16)
        assert len(subplane_faults(hx)) == 100  # K5^2: 2 * 5 * C(5,2)

    def test_paper_subcube_count(self):
        hx = HyperX((8, 8, 8), 8)
        assert len(subcube_faults(hx)) == 81  # K3^3: 3 * 9 * C(3,2)

    def test_block_switch_enumeration(self, hx2d):
        sw = block_switches(hx2d, (1, 1), (2, 2))
        assert sorted(hx2d.coords(s) for s in sw) == [
            (1, 1), (1, 2), (2, 1), (2, 2),
        ]

    def test_block_wraps_around(self, hx2d):
        sw = block_switches(hx2d, (3, 3), (2, 2))
        assert hx2d.switch_id((0, 0)) in sw

    def test_oversized_block_rejected(self, hx2d):
        with pytest.raises(ValueError):
            subplane_faults(hx2d, side=5)

    def test_subplane_keeps_network_connected(self, hx2d):
        net = apply_faults(hx2d, subplane_faults(hx2d, side=3))
        assert net.is_connected


class TestCrossStarShapes:
    def test_paper_2d_cross_count(self):
        hx = HyperX((16, 16), 16)
        assert len(cross_faults(hx)) == 110  # 2 * C(11,2)

    def test_paper_3d_star_count(self):
        hx = HyperX((8, 8, 8), 8)
        assert len(star_faults(hx)) == 63  # 3 * C(7,2)

    def test_paper_3d_star_root_keeps_three_links(self):
        hx = HyperX((8, 8, 8), 8)
        net = apply_faults(hx, star_faults(hx))
        root = shape_root(hx, "star")
        assert net.live_degree(root) == 3  # one live link per dimension

    def test_2d_cross_root_margin(self):
        hx = HyperX((16, 16), 16)
        net = apply_faults(hx, cross_faults(hx))
        root = shape_root(hx, "cross")
        # arm 11 of side 16: 5 live row-mates remain per dimension.
        assert net.live_degree(root) == 2 * (16 - 11)
        assert net.is_connected

    def test_small_scale_cross_connected(self, hx2d):
        net = apply_faults(hx2d, cross_faults(hx2d, arm=3))
        assert net.is_connected

    def test_arm_without_margin_rejected(self, hx2d):
        with pytest.raises(ValueError):
            cross_faults(hx2d, arm=4)  # side 4 leaves no live row-mate

    def test_tiny_arm_rejected(self, hx2d):
        with pytest.raises(ValueError):
            cross_faults(hx2d, arm=1)


class TestShapeDispatch:
    @pytest.mark.parametrize("shape", ["row", "subplane", "cross"])
    def test_2d_dispatch(self, hx2d, shape):
        kwargs = {"side": 2} if shape == "subplane" else (
            {"arm": 3} if shape == "cross" else {}
        )
        faults = shape_faults(hx2d, shape, **kwargs)
        assert faults
        root = shape_root(hx2d, shape, **kwargs)
        assert 0 <= root < hx2d.n_switches

    @pytest.mark.parametrize("shape", ["row", "subcube", "star"])
    def test_3d_dispatch(self, hx3d, shape):
        kwargs = {"side": 2} if shape == "subcube" else (
            {"arm": 3} if shape == "star" else {}
        )
        faults = shape_faults(hx3d, shape, **kwargs)
        assert faults
        assert Network(hx3d, faults).is_connected

    def test_unknown_shape_rejected(self, hx2d):
        with pytest.raises(ValueError):
            shape_faults(hx2d, "diagonal")
        with pytest.raises(ValueError):
            shape_root(hx2d, "diagonal")

    def test_root_inside_faulty_region(self, hx2d):
        """The paper roots the escape inside the fault shape for stress."""
        for shape, kwargs in (
            ("row", {}), ("subplane", {"side": 2}), ("cross", {"arm": 3}),
        ):
            root = shape_root(hx2d, shape, **kwargs)
            faults = shape_faults(hx2d, shape, **kwargs)
            touched = {s for link in faults for s in link}
            assert root in touched
