"""Random-regular (Jellyfish-style) structural properties, seed-looped."""

import pytest

from repro.topology.base import Network
from repro.topology.random_regular import RandomRegular


class TestRandomRegularStructure:
    @pytest.mark.parametrize("seed", range(5))
    def test_regular_connected_and_simple(self, seed):
        t = RandomRegular(16, 4, 1, seed=seed)
        net = Network(t)
        assert net.is_connected
        for s in range(t.n_switches):
            nbrs = t.neighbours(s)
            assert len(nbrs) == 4
            assert len(set(nbrs)) == 4
            assert s not in nbrs
            assert nbrs == sorted(nbrs)  # port numbering convention
            for nbr in nbrs:
                assert s in t.neighbours(nbr)

    @pytest.mark.parametrize("seed", range(5))
    def test_same_seed_same_graph(self, seed):
        a = RandomRegular(14, 3, seed=seed)
        b = RandomRegular(14, 3, seed=seed)
        assert a.links() == b.links()

    def test_different_seeds_differ(self):
        draws = {tuple(RandomRegular(16, 4, seed=s).links()) for s in range(5)}
        assert len(draws) > 1

    def test_link_count(self):
        t = RandomRegular(16, 4, seed=0)
        assert len(t.links()) == 16 * 4 // 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="even"):
            RandomRegular(5, 3)  # odd handshake sum
        with pytest.raises(ValueError, match="degree"):
            RandomRegular(4, 5)  # degree >= n
        with pytest.raises(ValueError, match="degree"):
            RandomRegular(8, 1)
        with pytest.raises(ValueError, match="at least 3"):
            RandomRegular(2, 2)

    def test_servers_default_to_degree(self):
        assert RandomRegular(12, 3, seed=1).servers_per_switch == 3

    def test_seed_in_repr(self):
        assert "seed=7" in repr(RandomRegular(12, 3, seed=7))


class TestRandomRegularSimulation:
    @pytest.mark.parametrize("seed", range(3))
    def test_escape_tree_reaches_every_pair(self, seed):
        from repro.updown.escape import NO_PATH, EscapeSubnetwork

        net = Network(RandomRegular(16, 4, 1, seed=seed))
        esc = EscapeSubnetwork(net, root=0)
        assert int(esc.dist_a.max()) < NO_PATH

    def test_polsp_runs_clean_at_low_load(self):
        from repro.routing.catalog import make_mechanism
        from repro.simulator.engine import Simulator
        from repro.traffic import make_traffic

        net = Network(RandomRegular(16, 4, 2, seed=0))
        mech = make_mechanism("PolSP", net, n_vcs=4, rng=1)
        sim = Simulator(net, mech, make_traffic("uniform", net, 0),
                        offered=0.3, seed=0)
        res = sim.run(warmup=100, measure=200)
        assert not res.deadlocked
        assert res.stalled_packets == 0
