"""Switch-failure model tests."""

import pytest

from repro.topology.base import Network
from repro.topology.faults import random_switch_fault_sequence, switch_faults
from repro.topology.graph import connected_components


class TestSwitchFaults:
    def test_all_incident_links_fail(self, hx2d):
        faults = switch_faults(hx2d, [0])
        assert len(faults) == hx2d.degree(0)
        assert all(0 in link for link in faults)

    def test_shared_links_not_duplicated(self, hx2d):
        a, b = 0, hx2d.neighbours(0)[0]
        faults = switch_faults(hx2d, [a, b])
        assert len(faults) == len(set(faults))
        assert len(faults) == hx2d.degree(a) + hx2d.degree(b) - 1

    def test_dead_switch_is_isolated_rest_connected(self, hx2d):
        net = Network(hx2d, switch_faults(hx2d, [5]))
        labels = connected_components(net)
        assert (labels == labels[5]).sum() == 1  # the corpse is alone
        others = [s for s in range(hx2d.n_switches) if s != 5]
        assert len({labels[s] for s in others}) == 1  # the rest hold

    def test_out_of_range_rejected(self, hx2d):
        with pytest.raises(ValueError):
            switch_faults(hx2d, [99])


class TestRandomSwitchSequence:
    def test_distinct_and_in_range(self, hx2d):
        seq = random_switch_fault_sequence(hx2d, 5, rng=1)
        assert len(set(seq)) == 5
        assert all(0 <= s < hx2d.n_switches for s in seq)

    def test_too_many_rejected(self, hx2d):
        with pytest.raises(ValueError):
            random_switch_fault_sequence(hx2d, 17)

    def test_deterministic(self, hx2d):
        assert random_switch_fault_sequence(hx2d, 4, rng=9) == \
            random_switch_fault_sequence(hx2d, 4, rng=9)
