"""Tests for the Topology/Network substrate (ports, faults, invariants)."""

import pytest

from repro.topology.base import Network, normalize_link


class TestNormalizeLink:
    def test_orders_endpoints(self):
        assert normalize_link(3, 1) == (1, 3)
        assert normalize_link(1, 3) == (1, 3)

    def test_rejects_self_link(self):
        with pytest.raises(ValueError):
            normalize_link(2, 2)


class TestHealthyNetwork:
    def test_link_count_matches_handshake(self, hx2d, net2d):
        degsum = sum(hx2d.degree(s) for s in range(hx2d.n_switches))
        assert len(net2d.live_links()) == degsum // 2

    def test_every_port_live(self, net2d):
        for s in range(net2d.n_switches):
            assert all(t >= 0 for t in net2d.port_neighbour[s])

    def test_port_of_matches_neighbour_on_port(self, net2d):
        for s in range(net2d.n_switches):
            for p, t in net2d.live_ports[s]:
                assert net2d.port_of(s, t) == p
                assert net2d.neighbour_on_port(s, p) == t

    def test_basic_metrics(self, net2d):
        assert net2d.is_connected
        assert net2d.diameter == 2
        assert 0 < net2d.average_distance < 2


class TestFaultyNetwork:
    def test_faults_normalised(self, hx2d):
        link = hx2d.links()[0]
        net = Network(hx2d, [(link[1], link[0])])
        assert link in net.faults

    def test_unknown_fault_rejected(self, hx2d):
        with pytest.raises(ValueError):
            Network(hx2d, [(0, 15)])  # (0,0) and (3,3) are not adjacent

    def test_dead_port_marked(self, hx2d):
        a, b = hx2d.links()[0]
        net = Network(hx2d, [(a, b)])
        p = hx2d.port_of(a, b)
        assert net.neighbour_on_port(a, p) == -1
        assert all(t != b for _, t in net.live_ports[a])

    def test_port_numbering_stable_under_faults(self, hx2d):
        """Ports keep their index when other links fail (firmware behaviour)."""
        a, b = hx2d.links()[0]
        net = Network(hx2d, [(a, b)])
        healthy = Network(hx2d)
        for p, t in net.live_ports[a]:
            assert healthy.port_neighbour[a][p] == t

    def test_live_degree_drops(self, hx2d):
        a, b = hx2d.links()[0]
        net = Network(hx2d, [(a, b)])
        assert net.live_degree(a) == hx2d.degree(a) - 1

    def test_with_faults_accumulates(self, hx2d):
        links = hx2d.links()
        net = Network(hx2d, links[:1]).with_faults(links[1:2])
        assert len(net.faults) == 2

    def test_distances_grow_with_faults(self, heavy_faulty2d, net2d):
        assert heavy_faulty2d.diameter > net2d.diameter

    def test_server_accessors(self, net2d):
        assert net2d.n_servers == 64
        assert net2d.servers_per_switch == 4
