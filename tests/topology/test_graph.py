"""Graph-algorithm tests, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.topology.base import Network
from repro.topology.graph import (
    UNREACHABLE,
    all_pairs_distances,
    average_distance,
    bfs_distances,
    connected_components,
    diameter,
    diameter_or_none,
    eccentricity,
    is_connected,
)
from repro.topology.hyperx import HyperX


def to_networkx(net: Network) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(net.n_switches))
    g.add_edges_from(net.live_links())
    return g


class TestDistances:
    def test_matches_networkx_healthy(self, net2d):
        g = to_networkx(net2d)
        d = all_pairs_distances(net2d)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for s in range(net2d.n_switches):
            for t in range(net2d.n_switches):
                assert d[s, t] == lengths[s][t]

    def test_matches_networkx_faulty(self, heavy_faulty2d):
        g = to_networkx(heavy_faulty2d)
        d = all_pairs_distances(heavy_faulty2d)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for s in range(heavy_faulty2d.n_switches):
            for t in range(heavy_faulty2d.n_switches):
                assert d[s, t] == lengths[s][t]

    def test_bfs_row_matches_all_pairs(self, faulty2d):
        d = all_pairs_distances(faulty2d)
        for s in (0, 7, 15):
            assert np.array_equal(bfs_distances(faulty2d, s), d[s])

    def test_unreachable_marked(self, hx2d):
        # Cut switch 0 off completely.
        faults = [link for link in hx2d.links() if 0 in link]
        net = Network(hx2d, faults)
        d = all_pairs_distances(net)
        assert d[0, 1] == UNREACHABLE
        assert d[1, 0] == UNREACHABLE
        assert d[0, 0] == 0


class TestConnectivity:
    def test_healthy_connected(self, net2d):
        assert is_connected(net2d)

    def test_isolated_switch_disconnects(self, hx2d):
        faults = [link for link in hx2d.links() if 0 in link]
        net = Network(hx2d, faults)
        assert not is_connected(net)
        labels = connected_components(net)
        assert labels[0] != labels[1]

    def test_component_labels_consistent(self, heavy_faulty2d):
        labels = connected_components(heavy_faulty2d)
        assert len(set(labels)) == 1


class TestDiameter:
    def test_healthy_hyperx_diameter_is_n_dims(self):
        for sides in [(4, 4), (4, 4, 4), (3, 5)]:
            assert diameter(Network(HyperX(sides, 1))) == len(sides)

    def test_diameter_raises_when_disconnected(self, hx2d):
        faults = [link for link in hx2d.links() if 0 in link]
        net = Network(hx2d, faults)
        with pytest.raises(ValueError):
            diameter(net)
        assert diameter_or_none(net) is None

    def test_eccentricity_bounded_by_diameter(self, faulty2d):
        diam = diameter(faulty2d)
        eccs = [eccentricity(faulty2d, s) for s in range(faulty2d.n_switches)]
        assert max(eccs) == diam


class TestAverageDistance:
    def test_matches_manual_computation(self, net2d):
        d = all_pairs_distances(net2d)
        n = net2d.n_switches
        assert average_distance(net2d) == pytest.approx(d.sum() / (n * (n - 1)))

    def test_paper_convention_3d(self):
        net = Network(HyperX((8, 8, 8), 8))
        assert average_distance(net, include_self=True) == pytest.approx(2.625)

    def test_disconnected_raises(self, hx2d):
        faults = [link for link in hx2d.links() if 0 in link]
        with pytest.raises(ValueError):
            average_distance(Network(hx2d, faults))


class TestDisconnectedTyping:
    """The disconnection errors are one typed exception, so sweep drivers
    can catch exactly it (and existing ``except ValueError`` still works)."""

    def _split(self, hx2d):
        return Network(hx2d, [link for link in hx2d.links() if 0 in link])

    def test_all_metrics_raise_network_disconnected(self, hx2d):
        from repro.topology.graph import NetworkDisconnected

        net = self._split(hx2d)
        with pytest.raises(NetworkDisconnected):
            diameter(net)
        with pytest.raises(NetworkDisconnected):
            average_distance(net)
        with pytest.raises(NetworkDisconnected):
            eccentricity(net, 1)
        assert issubclass(NetworkDisconnected, ValueError)

    def test_or_none_variants(self, hx2d, net2d):
        from repro.topology.graph import average_distance_or_none

        net = self._split(hx2d)
        assert diameter_or_none(net) is None
        assert average_distance_or_none(net) is None
        assert diameter_or_none(net2d) == 2
        assert average_distance_or_none(net2d) == pytest.approx(
            average_distance(net2d)
        )

    def test_escape_and_roots_raise_typed(self, hx2d):
        from repro.topology.graph import NetworkDisconnected
        from repro.updown.escape import EscapeSubnetwork
        from repro.updown.roots import choose_root

        net = self._split(hx2d)
        with pytest.raises(NetworkDisconnected):
            EscapeSubnetwork(net, root=1)
        with pytest.raises(NetworkDisconnected):
            choose_root(net, "min_eccentricity")
