"""Torus / mesh (k-ary n-cube) structural properties."""

import numpy as np
import pytest

from repro.topology.base import Network
from repro.topology.torus import Torus, mesh_ncube


class TestTorusStructure:
    @pytest.mark.parametrize("sides", [(4, 4), (3, 5), (4, 4, 4), (2, 3), (6,)])
    def test_adjacency_symmetric_and_duplicate_free(self, sides):
        t = Torus(sides, 1)
        for s in range(t.n_switches):
            nbrs = t.neighbours(s)
            assert len(set(nbrs)) == len(nbrs)
            assert s not in nbrs
            for nbr in nbrs:
                assert s in t.neighbours(nbr)

    @pytest.mark.parametrize("sides", [(4, 4), (5, 5), (4, 4, 4)])
    def test_regular_degree_2n(self, sides):
        t = Torus(sides, 1)
        n_dims = len(sides)
        assert all(t.degree(s) == 2 * n_dims for s in range(t.n_switches))

    def test_side_two_dimension_has_single_link(self):
        # In a wrapped side-2 ring the -1 and +1 neighbours coincide; the
        # neighbour list must hold one port, not a duplicated pair.
        t = Torus((2, 4), 1)
        assert all(t.degree(s) == 1 + 2 for s in range(t.n_switches))

    @pytest.mark.parametrize("sides", [(4, 4), (5, 3), (4, 4, 4)])
    def test_diameter_is_sum_of_half_sides(self, sides):
        net = Network(Torus(sides, 1))
        assert net.diameter == sum(k // 2 for k in sides)

    @pytest.mark.parametrize("sides", [(4, 4), (3, 5), (4, 4, 4)])
    def test_vertex_transitive_eccentricities(self, sides):
        """A torus is vertex-transitive: every switch has the same view."""
        net = Network(Torus(sides, 1))
        ecc = net.distances.max(axis=1)
        assert len(set(int(e) for e in ecc)) == 1
        degrees = {net.topology.degree(s) for s in range(net.n_switches)}
        assert len(degrees) == 1

    @pytest.mark.parametrize("sides", [(4, 4), (3, 5), (4, 4, 4), (2, 3)])
    def test_ring_distance_matches_graph_distance(self, sides):
        t = Torus(sides, 1)
        net = Network(t)
        d = net.distances
        for a in range(t.n_switches):
            for b in range(t.n_switches):
                assert t.ring_distance(a, b) == int(d[a, b])

    def test_coords_round_trip(self):
        t = Torus((3, 4, 5), 1)
        for s in range(t.n_switches):
            assert t.switch_id(t.coords(s)) == s

    def test_port_numbering_stable_under_faults(self):
        t = Torus((4, 4), 1)
        link = t.links()[0]
        net = Network(t, [link])
        a, b = link
        p = t.port_of(a, b)
        assert net.port_neighbour[a][p] == -1
        # Every other port keeps its healthy meaning.
        for q, nbr in enumerate(t.neighbours(a)):
            if q != p:
                assert net.port_neighbour[a][q] == nbr

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            Torus(())
        with pytest.raises(ValueError, match="side must be >= 2"):
            Torus((1, 4))
        with pytest.raises(ValueError, match="servers_per_switch"):
            Torus((4, 4), 0)


class TestMeshStructure:
    def test_boundary_degrees(self):
        m = mesh_ncube((3, 3), 1)
        degs = sorted(m.degree(s) for s in range(9))
        assert degs == [2, 2, 2, 2, 3, 3, 3, 3, 4]  # corners, edges, center

    def test_diameter_is_sum_of_side_minus_one(self):
        net = Network(mesh_ncube((3, 4), 1))
        assert net.diameter == (3 - 1) + (4 - 1)

    def test_mesh_distance_matches_manhattan(self):
        m = mesh_ncube((4, 3), 1)
        d = Network(m).distances
        for a in range(m.n_switches):
            for b in range(m.n_switches):
                assert m.ring_distance(a, b) == int(d[a, b])

    def test_link_count(self):
        # cols*(rows-1) + rows*(cols-1) grid edges.
        m = mesh_ncube((4, 5), 1)
        assert len(m.links()) == 4 * 4 + 5 * 3

    def test_agrees_with_explicit_mesh_topology(self):
        """The new family reproduces custom.mesh_topology's graph."""
        from repro.topology.custom import mesh_topology

        m_new = mesh_ncube((4, 3), 1)
        m_old = mesh_topology(4, 3, 1)
        assert m_new.links() == m_old.links()


class TestTorusSimulation:
    def test_polsp_runs_clean_at_low_load(self):
        from repro.routing.catalog import make_mechanism
        from repro.simulator.engine import Simulator
        from repro.traffic import make_traffic

        net = Network(Torus((4, 4), 2))
        mech = make_mechanism("PolSP", net, n_vcs=4, rng=1)
        sim = Simulator(net, mech, make_traffic("uniform", net, 0),
                        offered=0.3, seed=0)
        res = sim.run(warmup=100, measure=200)
        assert not res.deadlocked
        assert res.stalled_packets == 0
        assert res.accepted == pytest.approx(0.3, abs=0.06)

    def test_traffic_filter_drops_coordinate_patterns(self):
        from repro.traffic import supported_traffics

        net = Network(Torus((4, 4), 4))  # 64 servers: bit patterns fit
        names = supported_traffics(net)
        assert "uniform" in names and "shift" in names
        assert "dcr" not in names and "tornado" not in names
        assert "rpn" not in names and "adversarial" not in names
        assert "bitrev" in names  # 64 = 2^6 servers

    def test_permutation_patterns_admissible(self):
        from repro.traffic import make_traffic, supported_traffics
        from repro.traffic.base import validate_permutation

        net = Network(Torus((4, 4), 4))
        for seed in range(3):
            for name in supported_traffics(net):
                t = make_traffic(name, net, rng=seed)
                if t.is_deterministic:
                    validate_permutation(t.as_permutation(), net.n_servers)
                else:
                    rng = np.random.default_rng(seed)
                    for src in range(0, net.n_servers, 7):
                        dst = t.destination(src, rng)
                        assert 0 <= dst < net.n_servers and dst != src
