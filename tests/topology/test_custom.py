"""ExplicitTopology tests, including escape liveness on random graphs."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.base import Network
from repro.topology.custom import ExplicitTopology, mesh_topology, ring_topology
from repro.updown.escape import PHASE_CLIMB, EscapeSubnetwork


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ExplicitTopology([])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            ExplicitTopology([[0]])

    def test_rejects_asymmetry(self):
        with pytest.raises(ValueError):
            ExplicitTopology([[1], []])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ExplicitTopology([[1, 1], [0, 0]])

    def test_rejects_unknown_switch(self):
        with pytest.raises(ValueError):
            ExplicitTopology([[5], [0]])

    def test_port_order_preserved(self):
        t = ExplicitTopology([[2, 1], [0, 2], [1, 0]])
        assert t.neighbours(0) == [2, 1]
        assert t.port_of(0, 2) == 0


class TestConstructors:
    def test_from_edges(self):
        t = ExplicitTopology.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert t.n_switches == 3
        assert all(t.degree(s) == 2 for s in range(3))

    def test_from_networkx(self):
        g = nx.petersen_graph()
        t = ExplicitTopology.from_networkx(g, servers_per_switch=2)
        assert t.n_switches == 10
        assert all(t.degree(s) == 3 for s in range(10))
        assert Network(t).diameter == 2

    def test_from_networkx_requires_contiguous_labels(self):
        g = nx.Graph([("a", "b")])
        with pytest.raises(ValueError):
            ExplicitTopology.from_networkx(g)

    def test_ring(self):
        t = ring_topology(6, 2)
        net = Network(t)
        assert net.diameter == 3
        assert all(t.degree(s) == 2 for s in range(6))

    def test_mesh(self):
        t = mesh_topology(3, 3)
        net = Network(t)
        assert net.diameter == 4  # corner to corner
        corners = [0, 2, 6, 8]
        assert all(t.degree(c) == 2 for c in corners)
        assert t.degree(4) == 4  # the center

    def test_small_shapes_rejected(self):
        with pytest.raises(ValueError):
            ring_topology(2)
        with pytest.raises(ValueError):
            mesh_topology(1, 5)


class TestEscapeOnArbitraryGraphs:
    """§7: the escape construction works on *any* connected topology."""

    @pytest.mark.parametrize("topo", [
        ring_topology(7), mesh_topology(3, 4),
        ExplicitTopology.from_networkx(nx.petersen_graph()),
    ], ids=["ring", "mesh", "petersen"])
    def test_escape_builds_and_walks_terminate(self, topo, rng):
        net = Network(topo)
        esc = EscapeSubnetwork(net, root=0)
        bound = esc.route_length_bound()
        for s in range(net.n_switches):
            for t in range(net.n_switches):
                if s == t:
                    continue
                c, phase, hops = s, PHASE_CLIMB, 0
                while c != t:
                    cands = esc.candidates(c, t, phase)
                    port, nbr, _pen = cands[int(rng.integers(len(cands)))]
                    phase = esc.next_phase(c, port, phase)
                    c = nbr
                    hops += 1
                    assert hops <= bound

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_escape_liveness_on_random_connected_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 12))
        m = int(rng.integers(n, min(n * (n - 1) // 2, 3 * n) + 1))
        g = nx.gnm_random_graph(n, m, seed=seed)
        if not nx.is_connected(g):
            return  # hypothesis will draw other seeds
        topo = ExplicitTopology.from_networkx(g)
        net = Network(topo)
        esc = EscapeSubnetwork(net, root=int(rng.integers(n)))
        # Every pair has climb-phase candidates: total escape routing.
        for s in range(n):
            for t in range(n):
                if s != t:
                    assert esc.candidates(s, t, PHASE_CLIMB)

    def test_simulation_on_mesh(self, rng):
        """PolSP simulates end-to-end on a NoC-style mesh."""
        from repro.routing.catalog import make_mechanism
        from repro.simulator.engine import Simulator
        from repro.traffic import make_traffic

        net = Network(mesh_topology(3, 3, servers_per_switch=2))
        mech = make_mechanism("PolSP", net, n_vcs=4, rng=1)
        sim = Simulator(net, mech, make_traffic("uniform", net, 0),
                        offered=0.2, seed=0)
        res = sim.run(warmup=100, measure=200)
        assert not res.deadlocked
        assert res.accepted == pytest.approx(0.2, abs=0.05)
