"""Fat-tree (folded Clos) structural properties."""

import pytest

from repro.topology.base import Network
from repro.topology.fattree import FatTree


class TestFatTreeStructure:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_switch_counts(self, k):
        ft = FatTree(k)
        half = k // 2
        assert ft.n_edge == ft.n_agg == k * half
        assert ft.n_core == half * half
        assert ft.n_switches == k * k + half * half

    @pytest.mark.parametrize("k", [4, 6])
    def test_tier_degrees(self, k):
        ft = FatTree(k)
        for s in range(ft.n_switches):
            tier = ft.tier(s)
            expected = k // 2 if tier == "edge" else k
            assert ft.degree(s) == expected, (s, tier)

    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_adjacency_symmetric_and_duplicate_free(self, k):
        ft = FatTree(k)
        for s in range(ft.n_switches):
            nbrs = ft.neighbours(s)
            assert len(set(nbrs)) == len(nbrs)
            assert s not in nbrs
            for nbr in nbrs:
                assert s in ft.neighbours(nbr)

    @pytest.mark.parametrize("k", [4, 6])
    def test_diameter_four(self, k):
        assert Network(FatTree(k)).diameter == 4

    def test_edges_connect_only_within_pod(self):
        ft = FatTree(4)
        for s in range(ft.n_edge):
            for nbr in ft.neighbours(s):
                assert ft.tier(nbr) == "aggregation"
                assert ft.pod_of(nbr) == ft.pod_of(s)

    def test_core_reaches_every_pod_once(self):
        ft = FatTree(4)
        for c in range(ft.n_edge + ft.n_agg, ft.n_switches):
            pods = [ft.pod_of(nbr) for nbr in ft.neighbours(c)]
            assert sorted(pods) == list(range(ft.n_pods))

    def test_pod_of_core_rejected(self):
        ft = FatTree(4)
        with pytest.raises(ValueError, match="no pod"):
            ft.pod_of(ft.n_switches - 1)

    def test_link_count_is_full_bisection(self):
        # edge-agg: k pods x (k/2)^2; agg-core: the same again.
        k = 4
        ft = FatTree(k)
        assert len(ft.links()) == 2 * k * (k // 2) ** 2

    def test_rejects_odd_or_small_arity(self):
        with pytest.raises(ValueError, match="even"):
            FatTree(3)
        with pytest.raises(ValueError, match="even"):
            FatTree(0)

    def test_servers_default_to_half_k(self):
        assert FatTree(4).servers_per_switch == 2
        assert FatTree(4, 5).servers_per_switch == 5


class TestFatTreeSimulation:
    def test_polsp_runs_clean_at_low_load(self):
        from repro.routing.catalog import make_mechanism
        from repro.simulator.engine import Simulator
        from repro.traffic import make_traffic

        net = Network(FatTree(4))
        mech = make_mechanism("PolSP", net, n_vcs=4, rng=1)
        sim = Simulator(net, mech, make_traffic("uniform", net, 0),
                        offered=0.25, seed=0)
        res = sim.run(warmup=100, measure=200)
        assert not res.deadlocked
        assert res.stalled_packets == 0
        assert res.accepted == pytest.approx(0.25, abs=0.06)

    def test_hyperx_only_mechanisms_rejected_by_name(self):
        from repro.routing.catalog import make_mechanism

        net = Network(FatTree(4))
        with pytest.raises(TypeError, match="OmniSP.*FatTree"):
            make_mechanism("OmniSP", net)
        with pytest.raises(TypeError, match="OmniWAR.*FatTree"):
            make_mechanism("OmniWAR", net)
