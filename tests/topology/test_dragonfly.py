"""Dragonfly topology tests."""

import pytest

from repro.topology.base import Network
from repro.topology.dragonfly import Dragonfly, balanced_dragonfly


class TestConstruction:
    def test_balanced_sizing(self):
        df = balanced_dragonfly(2)
        assert (df.a, df.p, df.h) == (4, 2, 2)
        assert df.n_groups == 9
        assert df.n_switches == 36
        assert df.n_servers == 72

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Dragonfly(1, 1, 1)
        with pytest.raises(ValueError):
            Dragonfly(4, 0, 2)

    def test_degree_is_local_plus_global(self):
        df = balanced_dragonfly(2)
        for s in range(df.n_switches):
            assert df.degree(s) == (df.a - 1) + df.h


class TestGlobalArrangement:
    def test_every_group_pair_shares_one_link(self):
        df = balanced_dragonfly(2)
        pair_links: dict[tuple[int, int], int] = {}
        for a, b in df.links():
            ga, gb = df.group_of(a), df.group_of(b)
            if ga != gb:
                key = (min(ga, gb), max(ga, gb))
                pair_links[key] = pair_links.get(key, 0) + 1
        g = df.n_groups
        assert len(pair_links) == g * (g - 1) // 2
        assert set(pair_links.values()) == {1}

    def test_global_target_is_symmetric(self):
        df = balanced_dragonfly(2)
        for grp in range(df.n_groups):
            for ch in range(df.a * df.h):
                tg, tch = df.global_target(grp, ch)
                assert df.global_target(tg, tch) == (grp, ch)

    def test_channel_out_of_range(self):
        df = balanced_dragonfly(2)
        with pytest.raises(ValueError):
            df.global_target(0, df.a * df.h)


class TestGraphStructure:
    def test_groups_are_cliques(self):
        df = balanced_dragonfly(2)
        for grp in range(df.n_groups):
            members = [df.switch_id(grp, link) for link in range(df.a)]
            for x in members:
                for y in members:
                    if x != y:
                        assert y in df.neighbours(x)

    def test_adjacency_symmetric(self):
        df = balanced_dragonfly(2)
        for s in range(df.n_switches):
            for t in df.neighbours(s):
                assert s in df.neighbours(t)

    def test_diameter_is_three(self):
        """Dragonfly minimal routes are local-global-local: diameter 3."""
        net = Network(balanced_dragonfly(2))
        assert net.diameter == 3

    def test_ids_roundtrip(self):
        df = balanced_dragonfly(2)
        for s in range(df.n_switches):
            assert df.switch_id(df.group_of(s), df.local_of(s)) == s
