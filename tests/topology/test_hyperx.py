"""Unit and property tests for the HyperX (Hamming graph) topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.base import Network
from repro.topology.hyperx import HyperX, complete_graph, regular_hyperx

sides_strategy = st.lists(st.integers(2, 5), min_size=1, max_size=3).map(tuple)


class TestConstruction:
    def test_switch_count_is_product_of_sides(self):
        assert HyperX((4, 4), 4).n_switches == 16
        assert HyperX((8, 8, 8), 8).n_switches == 512
        assert HyperX((3, 5), 1).n_switches == 15

    def test_default_servers_per_switch_is_max_side(self):
        assert HyperX((4, 6)).servers_per_switch == 6

    def test_rejects_empty_sides(self):
        with pytest.raises(ValueError):
            HyperX(())

    def test_rejects_side_below_two(self):
        with pytest.raises(ValueError):
            HyperX((4, 1))

    def test_rejects_nonpositive_servers(self):
        with pytest.raises(ValueError):
            HyperX((4, 4), 0)

    def test_paper_2d_parameters(self):
        hx = HyperX((16, 16), 16)
        assert hx.n_switches == 256
        assert hx.n_servers == 4096
        assert hx.radix == 46  # 2*(16-1) network + 16 server ports
        assert len(hx.links()) == 3840

    def test_paper_3d_parameters(self):
        hx = HyperX((8, 8, 8), 8)
        assert hx.n_switches == 512
        assert hx.n_servers == 4096
        assert hx.radix == 29  # 3*(8-1) + 8
        assert len(hx.links()) == 5376


class TestCoordinates:
    @given(sides=sides_strategy)
    @settings(max_examples=40, deadline=None)
    def test_coords_roundtrip(self, sides):
        hx = HyperX(sides, 1)
        for s in range(hx.n_switches):
            assert hx.switch_id(hx.coords(s)) == s

    def test_switch_id_validates_length(self, hx2d):
        with pytest.raises(ValueError):
            hx2d.switch_id((1, 2, 3))

    def test_switch_id_validates_range(self, hx2d):
        with pytest.raises(ValueError):
            hx2d.switch_id((4, 0))

    def test_coords_enumerate_all_vectors(self, hx_rect):
        seen = {hx_rect.coords(s) for s in range(hx_rect.n_switches)}
        assert len(seen) == hx_rect.n_switches


class TestAdjacency:
    def test_degree_is_sum_of_sides_minus_dims(self, hx3d):
        # 3 dimensions of side 4 -> 3 * (4-1) = 9 neighbours.
        for s in range(hx3d.n_switches):
            assert hx3d.degree(s) == 9

    @given(sides=sides_strategy)
    @settings(max_examples=30, deadline=None)
    def test_neighbours_are_at_hamming_distance_one(self, sides):
        hx = HyperX(sides, 1)
        for s in range(hx.n_switches):
            for t in hx.neighbours(s):
                assert hx.hamming_distance(s, t) == 1

    @given(sides=sides_strategy)
    @settings(max_examples=30, deadline=None)
    def test_adjacency_is_symmetric(self, sides):
        hx = HyperX(sides, 1)
        for s in range(hx.n_switches):
            for t in hx.neighbours(s):
                assert s in hx.neighbours(t)

    def test_graph_distance_equals_hamming_distance(self, hx3d):
        net = Network(hx3d)
        d = net.distances
        for s in range(0, hx3d.n_switches, 7):
            for t in range(0, hx3d.n_switches, 5):
                assert d[s, t] == hx3d.hamming_distance(s, t)

    def test_no_self_loops(self, hx_rect):
        for s in range(hx_rect.n_switches):
            assert s not in hx_rect.neighbours(s)

    def test_rows_are_cliques(self, hx2d):
        # All switches sharing all-but-one coordinate are pairwise adjacent.
        row = [hx2d.switch_id((x, 2)) for x in range(4)]
        for a in row:
            for b in row:
                if a != b:
                    assert b in hx2d.neighbours(a)


class TestPorts:
    def test_port_roundtrip(self, hx_rect):
        for s in range(hx_rect.n_switches):
            for p in range(hx_rect.degree(s)):
                dim, value = hx_rect.port_dim_value(s, p)
                assert hx_rect.port(s, dim, value) == p

    def test_port_points_to_expected_switch(self, hx2d):
        s = hx2d.switch_id((1, 2))
        p = hx2d.port(s, 0, 3)
        assert hx2d.neighbours(s)[p] == hx2d.switch_id((3, 2))

    def test_port_to_own_coordinate_rejected(self, hx2d):
        s = hx2d.switch_id((1, 2))
        with pytest.raises(ValueError):
            hx2d.port(s, 0, 1)

    def test_port_numbering_is_dimension_major(self, hx3d):
        s = hx3d.switch_id((0, 0, 0))
        nbrs = hx3d.neighbours(s)
        # First k-1 ports vary dimension 0.
        for p in range(3):
            assert hx3d.coords(nbrs[p])[1:] == (0, 0)
        # Next k-1 ports vary dimension 1.
        for p in range(3, 6):
            c = hx3d.coords(nbrs[p])
            assert c[0] == 0 and c[2] == 0

    def test_port_dim_value_out_of_range(self, hx2d):
        with pytest.raises(ValueError):
            hx2d.port_dim_value(0, 99)


class TestHelpers:
    def test_unaligned_dims(self, hx3d):
        a = hx3d.switch_id((0, 1, 2))
        b = hx3d.switch_id((0, 3, 2))
        assert hx3d.unaligned_dims(a, b) == [1]

    def test_complete_graph_is_1d_hyperx(self):
        k = complete_graph(5)
        assert k.n_dims == 1
        assert k.n_switches == 5
        assert all(k.degree(s) == 4 for s in range(5))

    def test_regular_hyperx_defaults_servers_to_side(self):
        hx = regular_hyperx(3, 8)
        assert hx.sides == (8, 8, 8)
        assert hx.servers_per_switch == 8

    def test_server_switch_mapping(self, hx2d):
        assert hx2d.server_switch(0) == 0
        assert hx2d.server_switch(4) == 1
        assert list(hx2d.switch_servers(1)) == [4, 5, 6, 7]
