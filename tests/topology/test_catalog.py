"""Topology registry tests (make_topology / TOPOLOGIES)."""

import pytest

from repro.topology import (
    TOPOLOGIES,
    TOPOLOGY_DISPLAY,
    FatTree,
    HyperX,
    Network,
    RandomRegular,
    Torus,
    make_topology,
)


class TestRegistry:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_every_name_builds_connected(self, name):
        topo = make_topology(name)
        net = Network(topo)
        assert net.is_connected
        assert topo.n_switches >= 3
        assert topo.servers_per_switch >= 1

    def test_display_names_cover_registry(self):
        assert set(TOPOLOGY_DISPLAY) == set(TOPOLOGIES)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("moebius")

    def test_aliases_accepted(self):
        assert isinstance(make_topology("fat-tree"), FatTree)
        assert isinstance(make_topology("jellyfish"), RandomRegular)
        assert isinstance(make_topology("2D HyperX"), HyperX)

    def test_family_classes(self):
        assert isinstance(make_topology("torus"), Torus)
        assert make_topology("torus").wrap
        assert not make_topology("mesh").wrap
        assert make_topology("torus3").n_dims == 3

    def test_parameters_forwarded(self):
        assert make_topology("torus", side=6).sides == (6, 6)
        assert make_topology("fattree", k=6).k == 6
        assert make_topology("random", n_switches=12, degree=3, seed=5).seed == 5
        assert make_topology("hyperx", servers_per_switch=7).servers_per_switch == 7
        assert make_topology("dragonfly", servers_per_switch=3).p == 3

    def test_random_seed_changes_graph(self):
        a = make_topology("random", seed=0)
        b = make_topology("random", seed=1)
        assert a.links() != b.links()


class TestScaledTopologies:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    @pytest.mark.parametrize("scale", ["tiny", "small"])
    def test_scaled_families_build(self, name, scale):
        from repro.experiments.scales import get_scale, scaled_topology

        topo = scaled_topology(name, get_scale(scale))
        assert Network(topo).is_connected

    def test_scaled_sizes_grow_with_scale(self):
        from repro.experiments.scales import get_scale, scaled_topology

        for name in ("torus", "fattree", "random"):
            tiny = scaled_topology(name, get_scale("tiny"))
            small = scaled_topology(name, get_scale("small"))
            assert small.n_switches > tiny.n_switches

    def test_unknown_name_still_rejected(self):
        from repro.experiments.scales import get_scale, scaled_topology

        with pytest.raises(ValueError, match="unknown topology"):
            scaled_topology("moebius", get_scale("tiny"))

    def test_aliases_get_scale_sizing_not_defaults(self):
        """An alias must pick up the same per-scale parameters as its
        registry name — never fall back to the CI-sized defaults."""
        from repro.experiments.scales import get_scale, scaled_topology

        small = get_scale("small")
        assert scaled_topology("fat-tree", small).k == \
            scaled_topology("fattree", small).k == small.side_2d
        assert scaled_topology("jellyfish", small).n == small.side_2d ** 2

    def test_canonical_name_resolution(self):
        from repro.topology.catalog import canonical_name

        assert canonical_name("Fat-Tree") == "fattree"
        assert canonical_name("jellyfish") == "random"
        assert canonical_name("torus") == "torus"
        with pytest.raises(ValueError, match="unknown topology"):
            canonical_name("moebius")

    def test_alias_registry_aligned_with_topologies(self):
        from repro.topology.catalog import _ALIASES

        assert set(_ALIASES) == set(TOPOLOGIES) == set(TOPOLOGY_DISPLAY)
