"""Online reconfiguration: in-place link failure/repair on Network."""

import pytest

from repro.topology.base import Network
from repro.topology.hyperx import HyperX


@pytest.fixture()
def net():
    return Network(HyperX((4, 4), 4))


class TestApplyFault:
    def test_updates_live_adjacency(self, net):
        a, b = link = net.live_links()[0]
        pa, pb = net.port_of(a, b), net.port_of(b, a)
        net.apply_fault(link)
        assert link in net.faults
        assert net.port_neighbour[a][pa] == -1
        assert net.port_neighbour[b][pb] == -1
        assert link not in net.live_links()
        assert all(p != pa for p, _ in net.live_ports[a])

    def test_matches_fresh_network(self, net):
        links = net.live_links()[:3]
        for link in links:
            net.apply_fault(link)
        fresh = Network(net.topology, links)
        assert net.faults == fresh.faults
        assert net.port_neighbour == fresh.port_neighbour
        assert net.live_ports == fresh.live_ports
        assert (net.distances == fresh.distances).all()

    def test_restore_round_trip(self, net):
        baseline_dist = net.distances.copy()
        link = net.live_links()[5]
        net.apply_fault(link)
        net.restore_link(link)
        fresh = Network(net.topology)
        assert net.faults == frozenset()
        assert net.port_neighbour == fresh.port_neighbour
        assert (net.distances == baseline_dist).all()

    def test_rejects_inconsistent_events(self, net):
        link = net.live_links()[0]
        with pytest.raises(ValueError, match="not failed"):
            net.restore_link(link)
        net.apply_fault(link)
        with pytest.raises(ValueError, match="already failed"):
            net.apply_fault(link)
        with pytest.raises(ValueError, match="not present"):
            net.apply_fault((0, 15))  # not adjacent in a 4x4 HyperX

    def test_cached_metrics_invalidated(self):
        # The 2x2 HyperX is the 4-cycle 0-1-3-2-0; failing one edge leaves
        # a path graph, so cached distances/diameter must be recomputed.
        n = Network(HyperX((2, 2), 1))
        assert n.diameter == 2
        assert n.distances[0, 1] == 1
        n.apply_fault((0, 1))
        assert n.distances[0, 1] == 3
        assert n.diameter == 3
        assert n.is_connected

    def test_distances_track_fail_and_repair(self, net):
        d0 = net.distances.copy()
        link = net.live_links()[0]
        net.apply_fault(link)
        a, b = link
        assert net.distances[a, b] == 2  # direct hop gone, row detour
        net.restore_link(link)
        assert (net.distances == d0).all()
