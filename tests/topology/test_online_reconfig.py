"""Online reconfiguration: in-place link failure/repair on Network."""

import pytest

from repro.topology.base import Network
from repro.topology.fattree import FatTree
from repro.topology.hyperx import HyperX
from repro.topology.torus import Torus


@pytest.fixture()
def net():
    return Network(HyperX((4, 4), 4))


class TestApplyFault:
    def test_updates_live_adjacency(self, net):
        a, b = link = net.live_links()[0]
        pa, pb = net.port_of(a, b), net.port_of(b, a)
        net.apply_fault(link)
        assert link in net.faults
        assert net.port_neighbour[a][pa] == -1
        assert net.port_neighbour[b][pb] == -1
        assert link not in net.live_links()
        assert all(p != pa for p, _ in net.live_ports[a])

    def test_matches_fresh_network(self, net):
        links = net.live_links()[:3]
        for link in links:
            net.apply_fault(link)
        fresh = Network(net.topology, links)
        assert net.faults == fresh.faults
        assert net.port_neighbour == fresh.port_neighbour
        assert net.live_ports == fresh.live_ports
        assert (net.distances == fresh.distances).all()

    def test_restore_round_trip(self, net):
        baseline_dist = net.distances.copy()
        link = net.live_links()[5]
        net.apply_fault(link)
        net.restore_link(link)
        fresh = Network(net.topology)
        assert net.faults == frozenset()
        assert net.port_neighbour == fresh.port_neighbour
        assert (net.distances == baseline_dist).all()

    def test_rejects_inconsistent_events(self, net):
        link = net.live_links()[0]
        with pytest.raises(ValueError, match="not failed"):
            net.restore_link(link)
        net.apply_fault(link)
        with pytest.raises(ValueError, match="already failed"):
            net.apply_fault(link)
        with pytest.raises(ValueError, match="not present"):
            net.apply_fault((0, 15))  # not adjacent in a 4x4 HyperX

    def test_cached_metrics_invalidated(self):
        # The 2x2 HyperX is the 4-cycle 0-1-3-2-0; failing one edge leaves
        # a path graph, so cached distances/diameter must be recomputed.
        n = Network(HyperX((2, 2), 1))
        assert n.diameter == 2
        assert n.distances[0, 1] == 1
        n.apply_fault((0, 1))
        assert n.distances[0, 1] == 3
        assert n.diameter == 3
        assert n.is_connected

    def test_distances_track_fail_and_repair(self, net):
        d0 = net.distances.copy()
        link = net.live_links()[0]
        net.apply_fault(link)
        a, b = link
        assert net.distances[a, b] == 2  # direct hop gone, row detour
        net.restore_link(link)
        assert (net.distances == d0).all()


class TestReconfigNewFamilies:
    """Fail-and-repair on the diversity families (torus, fat-tree).

    The Network-level round trip must restore the exact healthy state,
    and a full simulated fail-and-repair cycle must leave the credit
    accounting and the per-link packet counters reconciled — the same
    invariants the HyperX schedule tests pin, on graphs with rings,
    tiers and non-uniform degrees instead of row cliques.
    """

    @pytest.mark.parametrize(
        "topo", [Torus((4, 4), 2), Torus((3, 4), 2, wrap=False), FatTree(4)],
        ids=["torus", "mesh", "fattree"],
    )
    def test_round_trip_matches_fresh_network(self, topo):
        net = Network(topo)
        d0 = net.distances.copy()
        links = net.live_links()[:3]
        for link in links:
            net.apply_fault(link)
        faulted = Network(topo, links)
        assert net.port_neighbour == faulted.port_neighbour
        assert net.live_ports == faulted.live_ports
        assert (net.distances == faulted.distances).all()
        for link in links:
            net.restore_link(link)
        fresh = Network(topo)
        assert net.faults == frozenset()
        assert net.port_neighbour == fresh.port_neighbour
        assert net.live_ports == fresh.live_ports
        assert (net.distances == d0).all()

    @pytest.mark.parametrize(
        "topo", [Torus((4, 4), 2), FatTree(4)], ids=["torus", "fattree"]
    )
    def test_simulated_cycle_reconciles_credits_and_counters(self, topo):
        from repro.routing.catalog import make_mechanism
        from repro.simulator.config import PAPER_CONFIG
        from repro.simulator.engine import Simulator
        from repro.simulator.schedule import FaultSchedule
        from repro.topology.faults import random_connected_fault_sequence
        from repro.traffic import make_traffic

        net = Network(topo)
        links = random_connected_fault_sequence(topo, 2, rng=4)
        sched = FaultSchedule.down_then_up(40, 120, links)
        mech = make_mechanism("PolSP", net, n_vcs=4, rng=1)
        sim = Simulator(
            net, mech, make_traffic("uniform", net, 0), offered=0.5,
            seed=0, fault_schedule=sched,
        )
        res = sim.run(warmup=20, measure=280)
        assert not res.deadlocked
        assert net.faults == frozenset()  # repaired
        # Conservation: every generated packet delivered, dropped or live.
        assert res.generated == res.delivered + res.dropped_packets + sim.in_flight
        assert sim.in_flight == sim.buffered_packets()
        # Credit accounting back within the virtual-cut-through bounds.
        cap = PAPER_CONFIG.input_buffer_packets
        for sw in sim.switches:
            for pv in range(sw.n_ports * sw.n_vcs):
                assert 0 <= sw.credits[pv] <= cap
        # Per-link counters: sized per switch degree, repaired links count
        # traffic again, escape counters never exceed totals.
        for s in range(net.n_switches):
            assert len(sim.link_packets[s]) == topo.degree(s)
            for p in range(topo.degree(s)):
                assert 0 <= sim.link_escape_packets[s][p] <= sim.link_packets[s][p]
        a, b = links[0]
        assert sim.link_packets[a][net.port_of(a, b)] > 0
