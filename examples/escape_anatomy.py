#!/usr/bin/env python
"""Anatomy of the opportunistic Up/Down escape subnetwork (paper §3.2).

Reproduces the paper's Figure 2 walk-through on a 4x4 HyperX rooted at
(0,0): classifies every link as Up/Down (black) or horizontal shortcut
(red), prints the BFS levels, the classic Up/Down distances and the escape
candidates for the paper's two worked examples, then shows how the tables
change when the root's row burns down.

Run:
    python examples/escape_anatomy.py [--side 4] [--root 0 0]
"""

import argparse

from repro import HyperX, Network
from repro.topology.faults import row_faults
from repro.updown import PHASE_CLIMB, EscapeSubnetwork


def level_grid(hx: HyperX, esc: EscapeSubnetwork) -> str:
    k = hx.sides[0]
    lines = ["BFS levels (distance to root):"]
    for y in range(hx.sides[1]):
        row = "  ".join(
            f"{int(esc.root_distance[hx.switch_id((x, y))])}" for x in range(k)
        )
        lines.append(f"  y={y}:  {row}")
    return "\n".join(lines)


def describe_candidates(hx, esc, src_coords, dst_coords) -> str:
    s, t = hx.switch_id(src_coords), hx.switch_id(dst_coords)
    out = [f"escape candidates {src_coords} -> {dst_coords} "
           f"(udist={int(esc.udist[s, t])}):"]
    kind_name = {1: "up      ", -1: "down    ", 0: "shortcut"}
    for port, nbr, pen in esc.candidates(s, t, PHASE_CLIMB):
        kind = esc.link_kind[s][port]
        out.append(
            f"  {kind_name[kind]} -> {hx.coords(nbr)}   penalty {pen:>3} phits"
        )
    return "\n".join(out)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=4)
    parser.add_argument("--root", type=int, nargs=2, default=(0, 0))
    args = parser.parse_args()

    hx = HyperX((args.side, args.side), args.side)
    net = Network(hx)
    root = hx.switch_id(tuple(args.root))
    esc = EscapeSubnetwork(net, root)

    print(f"escape subnetwork on {hx!r}, root {tuple(args.root)}")
    print(f"  black (Up/Down) links: {esc.n_black_links()}")
    print(f"  red (shortcut) links:  {esc.n_red_links()}")
    print(f"  max escape distance:   {esc.route_length_bound()}\n")
    print(level_grid(hx, esc))

    # The paper's two worked examples (Figure 2's discussion).
    print()
    print(describe_candidates(hx, esc, (0, 0), (1, 1)))
    print("  (two equivalent 2-hop Up/Down paths: JSQ picks by occupancy)")
    print()
    print(describe_candidates(hx, esc, (0, 1), (0, 3)))
    print("  (the direct red link cuts the Up/Down distance 2 -> 0: "
          "preferred shortcut)")

    # Burn the root's row and rebuild — the fault-tolerance path.
    faults = row_faults(hx, dim=0, fixed=(args.root[1],))
    fnet = Network(hx, faults)
    fesc = EscapeSubnetwork(fnet, root)
    print(f"\nafter burning the root's row ({len(faults)} links):")
    print(f"  black links: {fesc.n_black_links()}, "
          f"red links: {fesc.n_red_links()}, "
          f"max escape distance: {fesc.route_length_bound()}")
    print(level_grid(hx, fesc))
    print("\nevery pair still has escape candidates; SurePath keeps routing.")


if __name__ == "__main__":
    main()
