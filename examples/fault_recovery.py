#!/usr/bin/env python
"""Scenario: a production HyperX accumulating daily link failures.

Large datacenters expect a few failures per day (paper §1).  This script
plays an operator's week: links fail one by one, after every failure the
routing tables are rebuilt by BFS (exactly what SurePath requires), and
we measure what each routing mechanism still delivers.

It demonstrates the paper's central claim: ladder-based mechanisms
(OmniWAR, Polarized) stop delivering once failures stretch routes past
their VC budget, while SurePath degrades gracefully and never strands a
packet.

Run:
    python examples/fault_recovery.py [--failures-per-day 4] [--days 6]
"""

import argparse

from repro import (
    BatchInjection,
    HyperX,
    Network,
    Simulator,
    make_mechanism,
    make_traffic,
)
from repro.simulator import PAPER_CONFIG
from repro.topology import random_connected_fault_sequence


def deliverability(net: Network, mechanism: str, packets: int = 2) -> dict:
    """Fraction of a fixed batch each mechanism manages to deliver."""
    mech = make_mechanism(mechanism, net, n_vcs=4, rng=1)
    inj = BatchInjection(net.n_servers, packets)
    cfg = PAPER_CONFIG.with_(deadlock_threshold_slots=200)
    sim = Simulator(net, mech, make_traffic("uniform", net, 0),
                    injection=inj, seed=0, config=cfg)
    res = sim.run_until_drained(max_slots=20_000)
    total = packets * net.n_servers
    return {
        "delivered": res.delivered / total,
        "stalled": res.stalled_packets,
        "complete": res.completion_slot is not None,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=4)
    parser.add_argument("--failures-per-day", type=int, default=4)
    parser.add_argument("--days", type=int, default=6)
    parser.add_argument(
        "--mechanisms", nargs="+",
        default=["Polarized", "OmniWAR", "PolSP", "OmniSP"],
    )
    args = parser.parse_args()

    topo = HyperX((args.side, args.side), args.side)
    total = args.failures_per_day * args.days
    sequence = random_connected_fault_sequence(topo, total, rng=2024)
    print(f"{topo!r}: {len(topo.links())} links, "
          f"injecting {args.failures_per_day} failures/day for {args.days} days\n")

    header = f"{'day':>4} {'faults':>7} {'diameter':>9}"
    for m in args.mechanisms:
        header += f" {m + ' del%':>15}"
    print(header)

    for day in range(args.days + 1):
        n_faults = day * args.failures_per_day
        net = Network(topo, sequence[:n_faults])  # tables rebuilt from here
        row = f"{day:>4} {n_faults:>7} {net.diameter:>9}"
        for m in args.mechanisms:
            stats = deliverability(net, m)
            mark = "" if stats["complete"] else "*"
            row += f" {100 * stats['delivered']:>14.1f}{mark or ' '}"
        print(row)

    print("\n* batch never completed (packets stranded by the VC ladder)")
    print("SurePath (PolSP/OmniSP) delivers 100% as long as the network is "
          "connected; ladders fail once the diameter outgrows their budget.")


if __name__ == "__main__":
    main()
