#!/usr/bin/env python
"""Quickstart: simulate SurePath routing on a HyperX network.

Builds a small 2D HyperX, attaches the paper's PolSP mechanism (Polarized
routes + Up/Down escape subnetwork), offers uniform traffic at a few loads
and prints throughput / latency / fairness — the three metrics of the
paper's evaluation.

Run:
    python examples/quickstart.py [--side 4] [--offered 0.3 0.6 0.9]
"""

import argparse

from repro import HyperX, Network, Simulator, make_mechanism, make_traffic


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=4,
                        help="HyperX side k (k^2 switches, k servers each)")
    parser.add_argument("--offered", type=float, nargs="+",
                        default=[0.3, 0.6, 0.9],
                        help="offered loads to sweep (phits/cycle/server)")
    parser.add_argument("--mechanism", default="PolSP",
                        help="routing mechanism (see repro.MECHANISMS)")
    args = parser.parse_args()

    # 1. Topology: a k x k HyperX (every row/column is a complete graph).
    topo = HyperX((args.side, args.side), servers_per_switch=args.side)
    net = Network(topo)  # no faults yet
    print(f"network: {topo!r}")
    print(f"  switches={net.n_switches} servers={net.n_servers} "
          f"links={len(net.live_links())} diameter={net.diameter}")

    # 2. Routing mechanism: routes + VC management, built from BFS tables.
    mech = make_mechanism(args.mechanism, net)
    print(f"mechanism: {mech!r}")

    # 3. Traffic + simulation at each offered load.
    print(f"\n{'offered':>8} {'accepted':>9} {'latency(cy)':>12} {'Jain':>7}")
    for offered in args.offered:
        traffic = make_traffic("uniform", net, rng=0)
        sim = Simulator(net, mech_for(args.mechanism, net, offered),
                        traffic, offered=offered, seed=1)
        res = sim.run(warmup=150, measure=300)
        print(f"{offered:8.2f} {res.accepted:9.3f} "
              f"{res.avg_latency_cycles:12.1f} {res.jain:7.4f}")


def mech_for(name: str, net: Network, offered: float):
    """A fresh mechanism per run (routing state is per-simulation)."""
    return make_mechanism(name, net, rng=int(offered * 100))


if __name__ == "__main__":
    main()
