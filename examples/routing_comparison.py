#!/usr/bin/env python
"""Compare all six routing mechanisms across the paper's traffic patterns.

A miniature of the paper's Figures 4/5: saturation throughput of Minimal,
Valiant, OmniWAR, Polarized, OmniSP and PolSP under Uniform, Random Server
Permutation, Dimension Complement Reverse and (in 3D) Regular Permutation
to Neighbour.

The printed matrix shows the paper's story: Valiant pays 2x on benign
traffic but is optimal on DCR; Minimal collapses on adversarial patterns;
Omni-based mechanisms cap at 0.5 on RPN while Polarized-based ones exceed
it; SurePath (the *SP rows) gives up nothing for its fault tolerance.

Run:
    python examples/routing_comparison.py [--dims 3] [--side 4]
"""

import argparse

from repro import HyperX, Network, Simulator, make_mechanism, make_traffic
from repro.experiments.reporting import ascii_table
from repro.routing import MECHANISMS


def saturation(net, mechanism, traffic_name, warmup, measure):
    mech = make_mechanism(mechanism, net, rng=7)
    traffic = make_traffic(traffic_name, net, rng=0)
    sim = Simulator(net, mech, traffic, offered=1.0, seed=0)
    return sim.run(warmup=warmup, measure=measure)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dims", type=int, default=3, choices=(2, 3))
    parser.add_argument("--side", type=int, default=4)
    parser.add_argument("--warmup", type=int, default=150)
    parser.add_argument("--measure", type=int, default=300)
    args = parser.parse_args()

    topo = HyperX((args.side,) * args.dims, args.side)
    net = Network(topo)
    traffics = ["uniform", "randperm", "dcr"]
    if args.dims == 3:
        traffics.append("rpn")

    print(f"saturation throughput on {topo!r}\n")
    rows = []
    for mech in MECHANISMS:
        row = {"mechanism": mech}
        for t in traffics:
            res = saturation(net, mech, t, args.warmup, args.measure)
            row[t] = round(res.accepted, 3)
        rows.append(row)
    print(ascii_table(rows, ["mechanism"] + traffics))

    if args.dims == 3:
        print(
            "\nNote the rpn column: OmniWAR/OmniSP are capped at 0.5 "
            "(aligned routes vs the row bisection), Polarized/PolSP "
            "exceed it via non-aligned 3-hop routes — the paper's "
            "headline contrast (Figure 5, rightmost column)."
        )


if __name__ == "__main__":
    main()
